// Tests for the checkpoint/restore subsystem (src/sim/checkpoint.*):
// serialization round-trips and corruption rejection, the save→restore→run
// == straight-run property on every engine that supports checkpointing
// (fixed programs and a randprog sweep), cross-engine warm boot from an ISS
// checkpoint, byte-stability of the committed golden checkpoints under
// tests/golden/, retirement-lockstep diffing, and checkpointed divergence
// bisection/minimization.  As in fuzz_test.cpp, tests that register a
// deliberately broken engine into the process-wide registry come after all
// tests that iterate "all registered engines".
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "fuzz/minimize.hpp"
#include "isa/assembler.hpp"
#include "mem/main_memory.hpp"
#include "sim/checkpoint.hpp"
#include "sim/diff_runner.hpp"
#include "sim/registry.hpp"
#include "workloads/randprog.hpp"

#ifndef OSM_EXAMPLES_DIR
#define OSM_EXAMPLES_DIR "examples/asm"
#endif
#ifndef OSM_GOLDEN_DIR
#define OSM_GOLDEN_DIR "tests/golden"
#endif

namespace {

using namespace osm;

std::string read_file(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in) ADD_FAILURE() << "cannot open " << path;
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

isa::program_image assemble_example(const std::string& name) {
    return isa::assemble(read_file(std::string(OSM_EXAMPLES_DIR) + "/" + name));
}

bool images_equal(const isa::program_image& a, const isa::program_image& b) {
    if (a.entry != b.entry || a.segments.size() != b.segments.size()) return false;
    for (std::size_t i = 0; i < a.segments.size(); ++i) {
        if (a.segments[i].base != b.segments[i].base ||
            a.segments[i].bytes != b.segments[i].bytes) {
            return false;
        }
    }
    return true;
}

/// Architectural equality at a shared retirement boundary.  Cycles are
/// compared only when `exact` (the architectural level restarts them).
void expect_state_equal(const sim::engine& a, const sim::engine& b,
                        bool exact, const std::string& context) {
    EXPECT_EQ(a.halted(), b.halted()) << context;
    EXPECT_EQ(a.retired(), b.retired()) << context;
    for (unsigned r = 0; r < isa::num_gprs; ++r) {
        ASSERT_EQ(a.gpr(r), b.gpr(r)) << context << " gpr[" << r << "]";
    }
    if (a.executes_fp() && b.executes_fp()) {
        for (unsigned r = 0; r < isa::num_fprs; ++r) {
            ASSERT_EQ(a.fpr(r), b.fpr(r)) << context << " fpr[" << r << "]";
        }
    }
    EXPECT_EQ(a.console(), b.console()) << context;
    if (exact) {
        EXPECT_EQ(a.cycles(), b.cycles()) << context;
        EXPECT_EQ(a.pc(), b.pc()) << context;
    }
}

sim::checkpoint sample_checkpoint() {
    sim::checkpoint ck;
    ck.engine = "iss";
    ck.level = sim::checkpoint_level::exact;
    ck.arch.pc = 0x1234;
    ck.arch.halted = false;
    for (unsigned r = 0; r < 32; ++r) {
        ck.arch.gpr[r] = 0x1000u + r;
        ck.arch.fpr[r] = 0x2000u + r;
    }
    ck.retired = 777;
    ck.cycles = 999;
    ck.console = "hi\n\x01";
    ck.pages.push_back({0x1000, {1, 2, 3}});
    ck.pages.push_back({0x3000, {9}});
    ck.micro = {0xAA, 0xBB};
    return ck;
}

// ---------------------------------------------------------------------------
// Serialization format.
// ---------------------------------------------------------------------------

TEST(CheckpointFormat, SerializeDeserializeRoundTripsEveryField) {
    const auto ck = sample_checkpoint();
    const auto buf = sim::serialize(ck);
    const auto back = sim::deserialize(buf);
    EXPECT_EQ(back.engine, ck.engine);
    EXPECT_EQ(back.level, ck.level);
    EXPECT_EQ(back.arch.pc, ck.arch.pc);
    EXPECT_EQ(back.arch.halted, ck.arch.halted);
    for (unsigned r = 0; r < 32; ++r) {
        EXPECT_EQ(back.arch.gpr[r], ck.arch.gpr[r]);
        EXPECT_EQ(back.arch.fpr[r], ck.arch.fpr[r]);
    }
    EXPECT_EQ(back.retired, ck.retired);
    EXPECT_EQ(back.cycles, ck.cycles);
    EXPECT_EQ(back.console, ck.console);
    ASSERT_EQ(back.pages.size(), ck.pages.size());
    for (std::size_t i = 0; i < ck.pages.size(); ++i) {
        EXPECT_EQ(back.pages[i].base, ck.pages[i].base);
        EXPECT_EQ(back.pages[i].bytes, ck.pages[i].bytes);
    }
    EXPECT_EQ(back.micro, ck.micro);
}

TEST(CheckpointFormat, SerializationIsByteStable) {
    const auto ck = sample_checkpoint();
    EXPECT_EQ(sim::serialize(ck), sim::serialize(ck));
    EXPECT_EQ(sim::sidecar_json(ck), sim::sidecar_json(ck));
}

TEST(CheckpointFormat, RejectsBadMagicTruncationAndCorruption) {
    const auto buf = sim::serialize(sample_checkpoint());
    // Bad magic.
    auto bad = buf;
    bad[0] ^= 0xFF;
    EXPECT_THROW(sim::deserialize(bad), sim::checkpoint_error);
    // Truncation at every prefix length must throw, never crash or accept.
    for (std::size_t n = 0; n < buf.size(); ++n) {
        EXPECT_THROW(sim::deserialize(buf.data(), n), sim::checkpoint_error) << n;
    }
    // Single-byte corruption anywhere is caught by the checksum trailer.
    for (std::size_t i : {std::size_t{8}, buf.size() / 2, buf.size() - 1}) {
        auto corrupt = buf;
        corrupt[i] ^= 0x40;
        EXPECT_THROW(sim::deserialize(corrupt), sim::checkpoint_error) << i;
    }
    // Trailing garbage is rejected too.
    auto padded = buf;
    padded.push_back(0);
    EXPECT_THROW(sim::deserialize(padded), sim::checkpoint_error);
}

TEST(CheckpointFormat, RejectsUnorderedPages) {
    auto ck = sample_checkpoint();
    std::swap(ck.pages[0], ck.pages[1]);  // descending bases
    const auto buf = sim::serialize(ck);
    EXPECT_THROW(sim::deserialize(buf), sim::checkpoint_error);
}

TEST(CheckpointFormat, FileSaveLoadWritesBinaryAndSidecar) {
    const auto dir = std::filesystem::temp_directory_path() /
                     ("ckpt_file_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir);
    const auto path = (dir / "a.ckpt").string();
    const auto ck = sample_checkpoint();
    sim::save_checkpoint_file(ck, path);
    EXPECT_TRUE(std::filesystem::exists(path));
    EXPECT_TRUE(std::filesystem::exists(path + ".json"));
    const auto back = sim::load_checkpoint_file(path);
    EXPECT_EQ(sim::serialize(back), sim::serialize(ck));
    EXPECT_EQ(read_file(path + ".json"), sim::sidecar_json(ck));
    std::filesystem::remove_all(dir);
}

TEST(CheckpointFormat, MemorySnapshotTrimsAndOrdersPages) {
    mem::main_memory m;
    m.write32(0x5000, 0xDEADBEEF);  // later page touched first
    m.write8(0x1003, 7);            // page with trailing zeros after offset 3
    m.write32(0x2000, 0);           // touched but all-zero: omitted
    const auto pages = sim::snapshot_memory(m);
    ASSERT_EQ(pages.size(), 2u);
    EXPECT_EQ(pages[0].base, 0x1000u);
    EXPECT_EQ(pages[0].bytes.size(), 4u);  // trimmed to last nonzero byte
    EXPECT_EQ(pages[0].bytes[3], 7u);
    EXPECT_EQ(pages[1].base, 0x5000u);
    mem::main_memory back;
    sim::restore_memory(back, pages);
    EXPECT_EQ(back.read32(0x5000), 0xDEADBEEFu);
    EXPECT_EQ(back.read8(0x1003), 7u);
}

// ---------------------------------------------------------------------------
// Round-trip property: save → restore → run equals the uninterrupted run.
// ---------------------------------------------------------------------------

constexpr std::uint64_t k_run_budget = 50'000'000;

/// For every engine that supports checkpointing: run to `save_at`
/// retirements, save, restore into a fresh engine and run both the saver
/// and the restored engine to completion.  All three end states (straight
/// run, saver-after-save, restored run) must agree architecturally.
void check_round_trip(const isa::program_image& img, std::uint64_t save_at,
                      const std::string& context) {
    auto& reg = sim::engine_registry::instance();
    const bool fp = sim::program_uses_fp(img);
    for (const auto& name : reg.names()) {
        auto straight = reg.create(name, {});
        if (!straight->supports_checkpoint()) continue;
        if (fp && !straight->executes_fp()) continue;
        const std::string ctx = context + " engine=" + name;
        straight->load(img);
        straight->run(k_run_budget);
        ASSERT_TRUE(straight->halted()) << ctx;

        auto saver = reg.create(name, {});
        saver->load(img);
        saver->run_until_retired(save_at);
        const sim::checkpoint ck = saver->save_state();
        EXPECT_EQ(ck.engine, name) << ctx;
        EXPECT_EQ(ck.retired, saver->retired()) << ctx;
        // Determinism: saving twice from the same state is byte-identical.
        EXPECT_EQ(sim::serialize(ck), sim::serialize(saver->save_state())) << ctx;

        // Saving must not disturb the saver.
        saver->run(k_run_budget);
        expect_state_equal(*straight, *saver, false, ctx + " (saver)");

        auto restored = reg.create(name, {});
        restored->restore_state(ck);
        EXPECT_EQ(restored->retired(), ck.retired) << ctx;
        restored->run(k_run_budget);
        const bool exact =
            straight->checkpoint_support() == sim::checkpoint_level::exact;
        expect_state_equal(*straight, *restored, exact, ctx + " (restored)");
    }
}

TEST(CheckpointRoundTrip, EveryEngineOnFixedPrograms) {
    check_round_trip(assemble_example("sum100.s"), 150, "sum100");
    check_round_trip(assemble_example("fib.s"), 75, "fib");
}

TEST(CheckpointRoundTrip, FpProgramOnFpEngines) {
    check_round_trip(assemble_example("fp_dot.s"), 40, "fp_dot");
}

TEST(CheckpointRoundTrip, RandprogSweep) {
    for (const std::uint64_t seed : {3ull, 5ull, 9ull}) {
        workloads::randprog_options opt;
        opt.seed = seed;
        const auto img = workloads::make_random_program(opt);
        // Pick the midpoint of the program's own retirement count so the
        // save lands mid-run regardless of the seed.
        auto probe = sim::make_engine("iss", {});
        probe->load(img);
        probe->run(k_run_budget);
        ASSERT_TRUE(probe->halted());
        check_round_trip(img, probe->retired() / 2,
                         "randprog seed=" + std::to_string(seed));
    }
}

TEST(CheckpointRoundTrip, SaveBeforeRunAndAfterHalt) {
    const auto img = assemble_example("sum100.s");
    for (const std::string name : {"iss", "sarm", "p750"}) {
        auto straight = sim::make_engine(name, {});
        straight->load(img);
        straight->run(k_run_budget);

        // Save at retirement 0 (nothing run yet).
        auto fresh = sim::make_engine(name, {});
        fresh->load(img);
        auto restored = sim::make_engine(name, {});
        restored->restore_state(fresh->save_state());
        restored->run(k_run_budget);
        expect_state_equal(*straight, *restored, false, name + " save@0");

        // Save after halt: the restored engine must stay halted and agree.
        auto after = sim::make_engine(name, {});
        after->restore_state(straight->save_state());
        EXPECT_TRUE(after->halted()) << name;
        after->run(k_run_budget);  // must be a no-op
        expect_state_equal(*straight, *after, false, name + " save@halt");
    }
}

// ---------------------------------------------------------------------------
// Cross-engine warm boot: an ISS architectural checkpoint seeds any engine.
// ---------------------------------------------------------------------------

TEST(CheckpointCrossEngine, IssCheckpointWarmBootsEveryEngine) {
    const auto img = assemble_example("sum100.s");
    auto iss = sim::make_engine("iss", {});
    iss->load(img);
    iss->run_until_retired(120);
    const sim::checkpoint ck = iss->save_state();
    iss->run(k_run_budget);
    ASSERT_TRUE(iss->halted());

    auto& reg = sim::engine_registry::instance();
    for (const auto& name : reg.names()) {
        if (name == "iss") continue;
        auto eng = reg.create(name, {});
        if (!eng->supports_checkpoint()) continue;
        eng->restore_state(ck);
        EXPECT_EQ(eng->retired(), ck.retired) << name;
        eng->run(k_run_budget);
        expect_state_equal(*iss, *eng, false, "warm boot " + name);
    }
}

// ---------------------------------------------------------------------------
// Golden-state regressions: the committed checkpoints under tests/golden/
// must be reproduced byte-for-byte by today's build (save point = half of
// the program's total ISS retirement count; see
// scripts/regen_golden_checkpoints.sh).
// ---------------------------------------------------------------------------

TEST(CheckpointGolden, CommittedCheckpointsAreByteStable) {
    for (const std::string name : {"sum100", "fib", "sieve", "fp_dot"}) {
        const auto img = assemble_example(name + ".s");
        auto full = sim::make_engine("iss", {});
        full->load(img);
        full->run(k_run_budget);
        ASSERT_TRUE(full->halted()) << name;

        auto eng = sim::make_engine("iss", {});
        eng->load(img);
        eng->run_until_retired(full->retired() / 2);
        const sim::checkpoint ck = eng->save_state();
        const auto buf = sim::serialize(ck);

        const std::string base = std::string(OSM_GOLDEN_DIR) + "/" + name + ".ckpt";
        const std::string committed = read_file(base);
        ASSERT_FALSE(committed.empty()) << base << " missing — run "
                                        << "scripts/regen_golden_checkpoints.sh";
        EXPECT_EQ(committed,
                  std::string(reinterpret_cast<const char*>(buf.data()), buf.size()))
            << base;
        EXPECT_EQ(read_file(base + ".json"), sim::sidecar_json(ck)) << base;
        // And the committed file must still load and resume correctly.
        auto resumed = sim::make_engine("iss", {});
        resumed->restore_state(sim::load_checkpoint_file(base));
        resumed->run(k_run_budget);
        expect_state_equal(*full, *resumed, true, "golden " + name);
    }
}

// ---------------------------------------------------------------------------
// Multi-hart checkpoints (format v2).
// ---------------------------------------------------------------------------

/// Per-hart architectural equality between two mh-iss engines.
void expect_harts_equal(const sim::engine& a, const sim::engine& b,
                        const std::string& context) {
    ASSERT_EQ(a.harts(), b.harts()) << context;
    EXPECT_EQ(a.console(), b.console()) << context;
    EXPECT_EQ(a.retired(), b.retired()) << context;
    for (unsigned h = 0; h < a.harts(); ++h) {
        const std::string ctx = context + " hart " + std::to_string(h);
        EXPECT_EQ(a.hart_halted(h), b.hart_halted(h)) << ctx;
        EXPECT_EQ(a.hart_pc(h), b.hart_pc(h)) << ctx;
        EXPECT_EQ(a.hart_retired(h), b.hart_retired(h)) << ctx;
        for (unsigned r = 0; r < isa::num_gprs; ++r) {
            ASSERT_EQ(a.hart_gpr(h, r), b.hart_gpr(h, r)) << ctx << " gpr[" << r << "]";
        }
    }
}

// Save mid-run on the multi-hart ISS (TSO, so store buffers are live),
// restore into a fresh engine, and run both to completion: every hart's
// final state must match the uninterrupted run exactly.  The schedule-RNG
// state rides in the checkpoint, so the restored run replays the same
// interleaving the saver would have taken.
TEST(CheckpointMultiHart, RoundTripMatchesStraightRunPerHart) {
    workloads::randprog_options po;
    po.seed = 11;
    po.harts = 2;
    po.shared_contention = true;
    po.lrsc_loops = true;
    const auto img = workloads::make_random_program(po);

    for (const auto model : {mem::memory_model::sc, mem::memory_model::tso}) {
        sim::engine_config cfg;
        cfg.harts = po.harts;
        cfg.memory_model = model;
        cfg.sched_seed = 77;
        const std::string ctx =
            std::string("mh round trip ") + mem::memory_model_name(model);

        auto straight = sim::make_engine("mh-iss", cfg);
        straight->load(img);
        straight->run(k_run_budget);
        ASSERT_TRUE(straight->halted()) << ctx;

        auto saver = sim::make_engine("mh-iss", cfg);
        saver->load(img);
        saver->run(straight->retired() / 2);
        const sim::checkpoint ck = saver->save_state();
        // Byte-determinism of the save itself.
        EXPECT_EQ(sim::serialize(ck), sim::serialize(saver->save_state())) << ctx;
        // The save carries every hart and the serialized form round-trips.
        ASSERT_EQ(ck.harts.size(), po.harts) << ctx;
        const auto back = sim::deserialize(sim::serialize(ck));
        EXPECT_EQ(back.harts.size(), ck.harts.size()) << ctx;
        EXPECT_EQ(back.sched_rng, ck.sched_rng) << ctx;
        EXPECT_EQ(back.memory_model, ck.memory_model) << ctx;

        // Saving must not disturb the saver.
        saver->run(k_run_budget);
        expect_harts_equal(*straight, *saver, ctx + " (saver)");

        auto restored = sim::make_engine("mh-iss", cfg);
        restored->restore_state(sim::deserialize(sim::serialize(ck)));
        restored->run(k_run_budget);
        expect_harts_equal(*straight, *restored, ctx + " (restored)");
    }
}

// Under TSO a mid-run checkpoint can carry buffered (uncommitted) stores;
// those must survive the serialize/deserialize round trip entry for entry.
TEST(CheckpointMultiHart, StoreBufferContentsSurviveSerialization) {
    workloads::randprog_options po;
    po.seed = 7;
    po.harts = 4;
    po.shared_contention = true;
    const auto img = workloads::make_random_program(po);

    sim::engine_config cfg;
    cfg.harts = po.harts;
    cfg.memory_model = mem::memory_model::tso;
    cfg.sched_seed = 3;
    auto eng = sim::make_engine("mh-iss", cfg);
    eng->load(img);

    // Scan save points until one catches a non-empty store buffer (the
    // schedule is deterministic, so this loop is too).
    bool saw_buffered = false;
    for (int i = 0; i < 400 && !eng->halted(); ++i) {
        eng->run(1);
        const sim::checkpoint ck = eng->save_state();
        std::size_t buffered = 0;
        for (const auto& h : ck.harts) buffered += h.stores.size();
        if (buffered == 0) continue;
        saw_buffered = true;
        const auto back = sim::deserialize(sim::serialize(ck));
        ASSERT_EQ(back.harts.size(), ck.harts.size());
        for (std::size_t h = 0; h < ck.harts.size(); ++h) {
            ASSERT_EQ(back.harts[h].stores.size(), ck.harts[h].stores.size()) << h;
            for (std::size_t s = 0; s < ck.harts[h].stores.size(); ++s) {
                EXPECT_EQ(back.harts[h].stores[s].addr, ck.harts[h].stores[s].addr);
                EXPECT_EQ(back.harts[h].stores[s].size, ck.harts[h].stores[s].size);
                EXPECT_EQ(back.harts[h].stores[s].data, ck.harts[h].stores[s].data);
            }
        }
        break;
    }
    EXPECT_TRUE(saw_buffered)
        << "no save point caught a buffered store; TSO buffers never filled";
}

// Restoring a multi-hart checkpoint into a mismatched engine must fail
// loudly, never silently drop harts or buffered stores.
TEST(CheckpointMultiHart, MismatchedRestoreIsRejected) {
    workloads::randprog_options po;
    po.seed = 5;
    po.harts = 2;
    const auto img = workloads::make_random_program(po);

    sim::engine_config cfg;
    cfg.harts = 2;
    cfg.memory_model = mem::memory_model::tso;
    auto eng = sim::make_engine("mh-iss", cfg);
    eng->load(img);
    eng->run(50);
    const sim::checkpoint ck = eng->save_state();

    // Wrong hart count.
    sim::engine_config cfg4 = cfg;
    cfg4.harts = 4;
    EXPECT_THROW(sim::make_engine("mh-iss", cfg4)->restore_state(ck),
                 sim::checkpoint_error);
    // Wrong memory model.
    sim::engine_config cfg_sc = cfg;
    cfg_sc.memory_model = mem::memory_model::sc;
    EXPECT_THROW(sim::make_engine("mh-iss", cfg_sc)->restore_state(ck),
                 sim::checkpoint_error);
    // Single-hart engines refuse a 2-hart checkpoint.
    EXPECT_THROW(sim::make_engine("iss", {})->restore_state(ck),
                 sim::checkpoint_error);
}

// The v2 format bump is a hard gate: a file claiming the old version is
// rejected with a clear error naming the version, not misparsed.
TEST(CheckpointMultiHart, OldFormatVersionIsRejectedWithClearError) {
    auto buf = sim::serialize(sample_checkpoint());
    // Rewrite the version field (u32 after the 8-byte magic) to 1 and
    // recompute the FNV-1a trailer so only the version check can fire.
    buf[8] = 1;
    buf[9] = buf[10] = buf[11] = 0;
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (std::size_t i = 0; i < buf.size() - 8; ++i) {
        h ^= buf[i];
        h *= 0x100000001b3ull;
    }
    for (std::size_t i = 0; i < 8; ++i) {
        buf[buf.size() - 8 + i] = static_cast<std::uint8_t>(h >> (8 * i));
    }
    try {
        sim::deserialize(buf);
        FAIL() << "version-1 checkpoint was accepted";
    } catch (const sim::checkpoint_error& e) {
        EXPECT_NE(std::string(e.what()).find("unsupported checkpoint version 1"),
                  std::string::npos)
            << "unexpected error text: " << e.what();
    }
}

// ---------------------------------------------------------------------------
// Retirement-lockstep diffing.
// ---------------------------------------------------------------------------

TEST(Lockstep, CleanProgramAgreesOnEveryEngine) {
    const auto img = assemble_example("sum100.s");
    for (const auto& name : sim::engine_registry::instance().names_for_isa("vr32")) {
        if (name == "iss") continue;
        sim::lockstep_options opt;
        opt.interval = 64;
        const auto r = sim::lockstep_diff(name, img, opt);
        ASSERT_TRUE(r.ran) << name;
        EXPECT_FALSE(r.diverged) << name << ": " << r.div.to_string();
        EXPECT_FALSE(r.hit_budget) << name;
        EXPECT_GT(r.compares, 1u) << name;
    }
}

TEST(Lockstep, SkipsFpProgramOnIntegerOnlyEngine) {
    const auto r = sim::lockstep_diff("smt", assemble_example("fp_dot.s"), {});
    EXPECT_FALSE(r.ran);
    EXPECT_FALSE(r.skip_reason.empty());
}

// ---------------------------------------------------------------------------
// Deliberately broken engines (KEEP these tests last: they mutate the
// process-wide registry; ctest runs each discovered test in its own
// process, so the mutation is invisible to the tests above).
// ---------------------------------------------------------------------------

/// ISS wrapper that corrupts the *observed* x10 once the console is
/// non-empty, i.e. from the retirement of the first print syscall onward.
/// Forwards checkpointing to the inner ISS so lockstep's checkpoint
/// bisection engages.
class broken_after_print_engine final : public sim::engine {
public:
    explicit broken_after_print_engine(const sim::engine_config& cfg)
        : inner_(sim::make_engine("iss", cfg)) {}
    std::string_view name() const override { return "brk_ck"; }
    void load(const isa::program_image& img) override { inner_->load(img); }
    std::uint64_t run(std::uint64_t max_cycles) override {
        return inner_->run(max_cycles);
    }
    bool halted() const override { return inner_->halted(); }
    std::uint32_t gpr(unsigned r) const override {
        const bool armed = !inner_->console().empty();
        return inner_->gpr(r) ^ ((armed && r == 10) ? 0xdead0000u : 0u);
    }
    std::uint32_t fpr(unsigned r) const override { return inner_->fpr(r); }
    std::uint32_t pc() const override { return inner_->pc(); }
    const std::string& console() const override { return inner_->console(); }
    std::uint64_t cycles() const override { return inner_->cycles(); }
    std::uint64_t retired() const override { return inner_->retired(); }
    bool models_timing() const override { return false; }
    sim::checkpoint_level checkpoint_support() const override {
        return inner_->checkpoint_support();
    }
    sim::checkpoint save_state() const override { return inner_->save_state(); }
    void restore_state(const sim::checkpoint& ck) override {
        inner_->restore_state(ck);
    }

private:
    std::unique_ptr<sim::engine> inner_;
};

void register_broken_engine() {
    sim::engine_registry::instance().add(
        {"brk_ck", "ISS wrapper corrupting x10 after console output (test only)",
         [](const sim::engine_config& cfg) {
             return std::make_unique<broken_after_print_engine>(cfg);
         }});
}

TEST(LockstepBroken, BisectsFirstDivergentRetirement) {
    register_broken_engine();
    // 10 filler adds, then the first print (retirement #11) arms the
    // corruption; the bisection must land exactly there.
    std::string src;
    for (int i = 0; i < 10; ++i) src += "addi a3, a3, 1\n";
    src +=
        "syscall 2\n"   // print: console becomes non-empty at retirement 11
        "addi a4, a4, 2\n"
        "addi a4, a4, 2\n"
        "syscall 0\n";
    const auto img = isa::assemble(src);

    sim::lockstep_options opt;
    opt.interval = 4;  // agreed boundaries at 4 and 8 precede the divergence
    const auto r = sim::lockstep_diff("brk_ck", img, opt);
    ASSERT_TRUE(r.ran);
    ASSERT_TRUE(r.diverged);
    EXPECT_EQ(r.div.kind, "gpr");
    EXPECT_EQ(r.div.index, 10u);
    ASSERT_TRUE(r.located);
    EXPECT_TRUE(r.used_checkpoint_bisect);
    EXPECT_EQ(r.first_divergent_retired, 11u);
    EXPECT_GT(r.restores, 0u);
}

TEST(LockstepBroken, RerunBisectionFindsTheSameRetirement) {
    register_broken_engine();
    std::string src;
    for (int i = 0; i < 10; ++i) src += "addi a3, a3, 1\n";
    src += "syscall 2\nsyscall 0\n";
    const auto img = isa::assemble(src);

    // Force the load-from-zero fallback by divergence inside the first
    // interval (no agreed boundary was ever checkpointed).
    sim::lockstep_options opt;
    opt.interval = 4096;
    const auto r = sim::lockstep_diff("brk_ck", img, opt);
    ASSERT_TRUE(r.ran);
    ASSERT_TRUE(r.diverged);
    ASSERT_TRUE(r.located);
    EXPECT_FALSE(r.used_checkpoint_bisect);
    EXPECT_EQ(r.first_divergent_retired, 11u);
}

TEST(MinimizeBroken, CheckpointRevalidationMatchesFullReruns) {
    register_broken_engine();
    workloads::randprog_options ropt;
    ropt.seed = 33;
    const auto img = workloads::make_random_program(ropt);

    fuzz::minimize_options full;
    full.engines = {"iss", "brk_ck"};
    const auto a = fuzz::minimize_divergence(img, full);
    ASSERT_TRUE(a.was_divergent);

    fuzz::minimize_options ck = full;
    ck.checkpoint_revalidate = true;
    ck.checkpoint_interval = 64;
    const auto b = fuzz::minimize_divergence(img, ck);
    ASSERT_TRUE(b.was_divergent);
    EXPECT_TRUE(b.used_checkpoints);

    // Same reproducer either way: identical minimized program and verdict.
    EXPECT_EQ(a.minimized_words, b.minimized_words);
    EXPECT_TRUE(images_equal(a.image, b.image));
    EXPECT_EQ(a.first.engine, b.first.engine);
    EXPECT_EQ(a.first.kind, b.first.kind);
    // And the checkpointed pass pins down where the divergence begins.
    EXPECT_TRUE(b.located);
    EXPECT_GT(b.first_divergent_retired, 0u);
}

}  // namespace
