// OSM-DL: parsing, elaboration, error reporting, and running an
// ADL-described machine under the director.
#include <gtest/gtest.h>

#include "adl/adl.hpp"

#include "uarch/inorder_queue.hpp"
#include "uarch/register_file.hpp"
#include "uarch/rename.hpp"
#include "uarch/reset.hpp"
#include "analysis/analysis.hpp"
#include "core/director.hpp"
#include "core/osm.hpp"

namespace {

using namespace osm;
using osm_t = osm::core::osm;

const char* k_pipe = R"(
; three-stage pipeline described declaratively
machine pipe3
slots 1

manager unit m_f
manager unit m_d
manager unit m_w

state I initial
state F
state D
state W

edge I -> F {
  allocate m_f 0
  action on_fetch
}
edge F -> D {
  release m_f 0
  allocate m_d 0
}
edge D -> W {
  release m_d 0
  allocate m_w 0
}
edge W -> I {
  release m_w 0
  action on_retire
}
)";

TEST(Adl, ParsesManagersStatesEdges) {
    const auto m = adl::parse_machine(k_pipe, {}, /*allow_missing_actions=*/true);
    EXPECT_EQ(m->name, "pipe3");
    EXPECT_EQ(m->managers.size(), 3u);
    EXPECT_NE(m->find_manager("m_f"), nullptr);
    EXPECT_EQ(m->find_manager("nope"), nullptr);
    EXPECT_EQ(m->graph.num_states(), 4);
    EXPECT_EQ(m->graph.num_edges(), 4);
    EXPECT_TRUE(m->graph.finalized());
    EXPECT_EQ(m->graph.state_name(m->graph.initial()), "I");
}

TEST(Adl, ElaboratedMachineRunsLikeAPipeline) {
    int fetches = 0;
    int retires = 0;
    adl::action_registry reg;
    reg["on_fetch"] = [&](core::osm&) { ++fetches; };
    reg["on_retire"] = [&](core::osm&) { ++retires; };
    const auto m = adl::parse_machine(k_pipe, reg);

    core::director d;
    std::vector<std::unique_ptr<osm_t>> ops;
    for (int i = 0; i < 4; ++i) {
        ops.push_back(std::make_unique<osm_t>(m->graph, "op" + std::to_string(i)));
        d.add(*ops.back());
    }
    // 20 control steps of a 3-deep pipeline: after fill, one retire/step.
    for (int i = 0; i < 20; ++i) d.control_step();
    EXPECT_GT(retires, 10);
    EXPECT_GE(fetches, retires);
    // Occupancy invariant: never two ops in one stage.
    const auto* mf = dynamic_cast<core::unit_token_manager*>(m->find_manager("m_f"));
    ASSERT_NE(mf, nullptr);
}

TEST(Adl, SupportsAllManagerKinds) {
    const auto m = adl::parse_machine(R"(
machine kinds
manager unit u
manager pool p capacity 4
manager queue q capacity 6 alloc_bw 2 release_bw 2
manager regfile rf regs 32 zero forwarding
manager rename rn regs 32 buffers 6 zero
manager reset rs
state I initial
)");
    EXPECT_EQ(m->managers.size(), 6u);
    EXPECT_NE(dynamic_cast<core::pool_token_manager*>(m->find_manager("p")), nullptr);
    EXPECT_NE(dynamic_cast<osm::uarch::inorder_queue_manager*>(m->find_manager("q")), nullptr);
    EXPECT_NE(dynamic_cast<osm::uarch::register_file_manager*>(m->find_manager("rf")), nullptr);
    EXPECT_NE(dynamic_cast<osm::uarch::rename_manager*>(m->find_manager("rn")), nullptr);
    EXPECT_NE(dynamic_cast<osm::uarch::reset_manager*>(m->find_manager("rs")), nullptr);
}

TEST(Adl, SlotIdentifiersAndPriorities) {
    const auto m = adl::parse_machine(R"(
machine s
slots 2
manager unit u
state I initial
state A
edge I -> A priority 7 {
  allocate u slot 1
}
)");
    const auto& e = m->graph.edge(0);
    EXPECT_EQ(e.priority, 7);
    ASSERT_EQ(e.prims.size(), 1u);
    EXPECT_EQ(e.prims[0].ident.slot, 1);
}

TEST(Adl, DiscardAllParses) {
    const auto m = adl::parse_machine(R"(
machine r
manager unit u
manager reset rs
state I initial
state H
edge I -> H { allocate u 0 }
edge H -> I priority 9 {
  inquire rs 0
  discard_all
}
edge H -> I { release u 0 }
)");
    EXPECT_TRUE(analysis::lint(m->graph).clean());
}

TEST(Adl, ErrorsCarryLineNumbers) {
    try {
        adl::parse_machine("machine x\nstate I initial\nbogus\n");
        FAIL() << "expected adl_error";
    } catch (const adl::adl_error& e) {
        EXPECT_EQ(e.line(), 3u);
    }
    EXPECT_THROW(adl::parse_machine("machine x\nedge A -> B { }\n"), adl::adl_error);
    EXPECT_THROW(adl::parse_machine("machine x\nstate I\nstate I\n"), adl::adl_error);
    EXPECT_THROW(adl::parse_machine("machine x\nmanager bogus m\n"), adl::adl_error);
    EXPECT_THROW(
        adl::parse_machine("machine x\nstate I initial\nstate A\n"
                           "edge I -> A { allocate ghost 0 }\n"),
        adl::adl_error);
    EXPECT_THROW(adl::parse_machine(""), adl::adl_error);
}

TEST(Adl, UnknownActionRejectedUnlessAllowed) {
    const char* src = R"(
machine a
manager unit u
state I initial
state A
edge I -> A { action mystery }
)";
    EXPECT_THROW(adl::parse_machine(src), adl::adl_error);
    EXPECT_NO_THROW(adl::parse_machine(src, {}, /*allow_missing_actions=*/true));
}

TEST(Adl, AnalysisComposesWithAdlMachines) {
    const auto m = adl::parse_machine(k_pipe, {}, true);
    const auto rep = analysis::lint(m->graph);
    EXPECT_TRUE(rep.clean());
    const auto t = analysis::extract_reservation_table(m->graph, "m_w");
    ASSERT_EQ(t.table.size(), 3u);
    EXPECT_TRUE(analysis::allocation_order_consistent(m->graph));
    EXPECT_NE(analysis::to_dot(m->graph).find("m_d"), std::string::npos);
}

}  // namespace
