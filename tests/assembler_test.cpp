// Two-pass assembler: syntax, labels, sections, pseudo-instructions,
// error reporting, and a disassembler round-trip property.
#include <gtest/gtest.h>

#include "isa/assembler.hpp"
#include "isa/disasm.hpp"
#include "isa/encoding.hpp"
#include "isa/iss.hpp"
#include "mem/main_memory.hpp"

namespace {

using namespace osm;
using isa::assemble;

std::uint32_t word_at(const isa::program_image& img, std::uint32_t addr) {
    for (const auto& seg : img.segments) {
        if (addr >= seg.base && addr + 4 <= seg.base + seg.bytes.size()) {
            const std::size_t off = addr - seg.base;
            return static_cast<std::uint32_t>(seg.bytes[off]) |
                   static_cast<std::uint32_t>(seg.bytes[off + 1]) << 8 |
                   static_cast<std::uint32_t>(seg.bytes[off + 2]) << 16 |
                   static_cast<std::uint32_t>(seg.bytes[off + 3]) << 24;
        }
    }
    ADD_FAILURE() << "address not in image";
    return 0;
}

TEST(Assembler, BasicEncoding) {
    const auto img = assemble("add a0, a1, a2\n");
    const auto di = isa::decode(word_at(img, 0x1000));
    EXPECT_EQ(di.code, isa::op::add_r);
    EXPECT_EQ(di.rd, 4);
    EXPECT_EQ(di.rs1, 5);
    EXPECT_EQ(di.rs2, 6);
}

TEST(Assembler, ForwardAndBackwardLabels) {
    const auto img = assemble(R"(
start:  beq a0, a1, done
        j start
done:   halt
    )");
    const auto b = isa::decode(word_at(img, 0x1000));
    EXPECT_EQ(b.code, isa::op::beq);
    EXPECT_EQ(b.imm, 4);  // to 0x1008 from pc+4=0x1004
    const auto j = isa::decode(word_at(img, 0x1004));
    EXPECT_EQ(j.code, isa::op::jal);
    EXPECT_EQ(j.imm, -8);  // back to 0x1000 from 0x1008
}

TEST(Assembler, MemoryOperands) {
    const auto img = assemble("lw a0, -4(sp)\nsw a0, 0x10(sp)\nflw f1, 8(sp)\nfsw f1, 12(sp)\n");
    auto di = isa::decode(word_at(img, 0x1000));
    EXPECT_EQ(di.code, isa::op::lw);
    EXPECT_EQ(di.imm, -4);
    EXPECT_EQ(di.rs1, 2);
    di = isa::decode(word_at(img, 0x1004));
    EXPECT_EQ(di.code, isa::op::sw);
    EXPECT_EQ(di.imm, 16);
    EXPECT_EQ(di.rs2, 4);  // store data register
    di = isa::decode(word_at(img, 0x1008));
    EXPECT_EQ(di.code, isa::op::flw);
    EXPECT_EQ(di.rd, 1);
    di = isa::decode(word_at(img, 0x100C));
    EXPECT_EQ(di.code, isa::op::fsw);
    EXPECT_EQ(di.rs2, 1);
}

TEST(Assembler, PseudoInstructions) {
    const auto img = assemble(R"(
        nop
        mv a0, a1
        li a2, 42
        li a3, 0x12345678
        li a4, 0x70000
        ret
    )");
    EXPECT_EQ(isa::decode(word_at(img, 0x1000)).code, isa::op::addi);
    auto mv = isa::decode(word_at(img, 0x1004));
    EXPECT_EQ(mv.code, isa::op::addi);
    EXPECT_EQ(mv.rd, 4);
    EXPECT_EQ(mv.rs1, 5);
    // Small li: one addi.  Large li: lui+ori.  Aligned li: lui only.
    EXPECT_EQ(isa::decode(word_at(img, 0x1008)).code, isa::op::addi);
    EXPECT_EQ(isa::decode(word_at(img, 0x100C)).code, isa::op::lui);
    EXPECT_EQ(isa::decode(word_at(img, 0x1010)).code, isa::op::ori);
    auto lui7 = isa::decode(word_at(img, 0x1014));
    EXPECT_EQ(lui7.code, isa::op::lui);
    EXPECT_EQ(lui7.imm, 7);
    auto ret = isa::decode(word_at(img, 0x1018));
    EXPECT_EQ(ret.code, isa::op::jalr);
    EXPECT_EQ(ret.rs1, 1);
}

TEST(Assembler, LiLoadsExactValues) {
    mem::main_memory m;
    isa::iss sim(m);
    sim.load(assemble(R"(
        li a0, 42
        li a1, -42
        li a2, 0x12345678
        li a3, 0xFFFF8000
        li a4, 0x8000
        halt
    )"));
    sim.run();
    EXPECT_EQ(sim.state().gpr[4], 42u);
    EXPECT_EQ(sim.state().gpr[5], static_cast<std::uint32_t>(-42));
    EXPECT_EQ(sim.state().gpr[6], 0x12345678u);
    EXPECT_EQ(sim.state().gpr[7], 0xFFFF8000u);
    EXPECT_EQ(sim.state().gpr[8], 0x8000u);
}

TEST(Assembler, DataDirectivesAndSections) {
    const auto img = assemble(R"(
        .data 0x8000
tab:    .word 1, 2, 3
bytes:  .byte 0xAA, 0xBB
        .align 4
after:  .word 0xCAFEBABE
        .text
        li a0, 0
        halt
    )");
    EXPECT_EQ(word_at(img, 0x8000), 1u);
    EXPECT_EQ(word_at(img, 0x8008), 3u);
    EXPECT_EQ(word_at(img, 0x8010), 0xCAFEBABEu);
    EXPECT_EQ(img.entry, 0x1000u);
}

TEST(Assembler, StartSymbolSetsEntry) {
    const auto img = assemble(R"(
helper: halt
_start: li a0, 1
        halt
    )");
    EXPECT_EQ(img.entry, 0x1004u);
}

TEST(Assembler, ErrorsCarryLineNumbers) {
    try {
        assemble("nop\nbogus a0, a1\n");
        FAIL() << "expected asm_error";
    } catch (const isa::asm_error& e) {
        EXPECT_EQ(e.line(), 2u);
    }
    EXPECT_THROW(assemble("addi a0, a1, 99999\n"), isa::asm_error);
    EXPECT_THROW(assemble("lw a0, a1, 4\n"), isa::asm_error);
    EXPECT_THROW(assemble("beq a0, a1, nowhere\n"), isa::asm_error);
    EXPECT_THROW(assemble("dup:\ndup:\n"), isa::asm_error);
    EXPECT_THROW(assemble("add f0, a0, a1\n"), isa::asm_error);
}

// Property: disassembling an assembled instruction and re-assembling it
// yields the same word (for ops whose disassembly is direct syntax).
TEST(Assembler, DisasmRoundTrip) {
    const char* lines[] = {
        "add x4, x5, x6",   "sub x1, x2, x3",    "mul x7, x8, x9",
        "addi x4, x5, -12", "slli x4, x5, 3",    "lw x4, -8(x2)",
        "sw x4, 12(x2)",    "lbu x9, 0(x8)",     "jalr x1, x5, 0",
        "fadd f1, f2, f3",  "fmv.x.w x4, f1",    "fcvt.s.w f2, x5",
        "flw f4, 16(x2)",   "fsw f4, 20(x2)",    "halt",
        "syscall 2",        "lui x4, 0x12",      "nor x4, x5, x6",
    };
    for (const char* line : lines) {
        const auto img1 = assemble(line);
        const std::uint32_t w1 = word_at(img1, 0x1000);
        const std::string dis = isa::disassemble(isa::decode(w1));
        const auto img2 = assemble(dis);
        EXPECT_EQ(word_at(img2, 0x1000), w1) << line << " -> " << dis;
    }
}

}  // namespace
