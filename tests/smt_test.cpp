// SMT model (paper §6): thread-tagged token identifiers, per-thread
// control hazards, fetch policies, and thread-priority ranking.
#include <gtest/gtest.h>

#include "isa/assembler.hpp"
#include "isa/iss.hpp"
#include "mem/main_memory.hpp"
#include "smt/smt.hpp"

namespace {

using namespace osm;

/// Dependent-chain program: heavy RAW stalls on a single thread.
isa::program_image chain(unsigned length, unsigned seed, std::uint32_t base) {
    std::string src = "li a0, " + std::to_string(seed) + "\n";
    for (unsigned i = 0; i < length; ++i) {
        src += "addi a0, a0, 1\nslli a1, a0, 1\nadd a0, a0, a1\n";
    }
    src += "halt\n";
    return isa::assemble(src, base);
}

/// Loop program computing sum 1..n (exercises per-thread branches).
isa::program_image summing(unsigned n, std::uint32_t base) {
    const std::string src = R"(
        li a0, 0
        li a1, 1
        li a2, )" + std::to_string(n) + R"(
loop:   add a0, a0, a1
        addi a1, a1, 1
        bge a2, a1, loop
        halt
    )";
    return isa::assemble(src, base);
}

TEST(Smt, ThreadsComputeIndependently) {
    mem::main_memory m;
    smt::smt_config cfg;
    smt::smt_model model(cfg, m);
    model.load(0, summing(100, 0x1000));
    model.load(1, summing(50, 0x5000));
    model.run(1'000'000);
    EXPECT_TRUE(model.all_done());
    EXPECT_EQ(model.gpr(0, 4), 5050u);
    EXPECT_EQ(model.gpr(1, 4), 1275u);
    // Register files are isolated: thread 0's a1 ran to 101, thread 1's 51.
    EXPECT_EQ(model.gpr(0, 5), 101u);
    EXPECT_EQ(model.gpr(1, 5), 51u);
}

TEST(Smt, MatchesIssPerThread) {
    const auto p0 = summing(77, 0x1000);
    const auto p1 = chain(20, 3, 0x5000);
    mem::main_memory m0, m1, m2;
    isa::iss r0(m0);
    r0.load(p0);
    r0.run();
    isa::iss r1(m1);
    r1.load(p1);
    r1.run();

    smt::smt_config cfg;
    smt::smt_model model(cfg, m2);
    model.load(0, p0);
    model.load(1, p1);
    model.run(1'000'000);
    for (unsigned r = 0; r < 32; ++r) {
        EXPECT_EQ(model.gpr(0, r), r0.state().gpr[r]) << "t0 x" << r;
        EXPECT_EQ(model.gpr(1, r), r1.state().gpr[r]) << "t1 x" << r;
    }
    EXPECT_EQ(model.stats().retired[0], r0.instret());
    EXPECT_EQ(model.stats().retired[1], r1.instret());
}

TEST(Smt, SecondThreadHidesStalls) {
    // One stall-bound thread alone vs two of them interleaved: total IPC
    // should roughly double (the SMT pitch).
    mem::main_memory m_solo, m_smt;
    smt::smt_config cfg;
    smt::smt_model solo(cfg, m_solo);
    solo.load(0, chain(40, 1, 0x1000));
    solo.run(1'000'000);

    smt::smt_model both(cfg, m_smt);
    both.load(0, chain(40, 1, 0x1000));
    both.load(1, chain(40, 2, 0x5000));
    both.run(1'000'000);

    EXPECT_GT(both.stats().ipc(), solo.stats().ipc() * 1.6);
}

TEST(Smt, RoundRobinIsFair) {
    mem::main_memory m;
    smt::smt_config cfg;
    cfg.policy = smt::fetch_policy::round_robin;
    smt::smt_model model(cfg, m);
    model.load(0, chain(40, 1, 0x1000));
    model.load(1, chain(40, 2, 0x5000));
    model.run(1'000'000);
    const auto& st = model.stats();
    // Identical programs, alternating fetch: equal retirement.
    EXPECT_EQ(st.retired[0], st.retired[1]);
}

TEST(Smt, PriorityThreadFinishesFirst) {
    // With a foreground thread, its program should complete in fewer cycles
    // than under fair scheduling, at the background thread's expense.
    const auto prog0 = chain(40, 1, 0x1000);
    const auto prog1 = chain(40, 2, 0x5000);

    const auto cycles_until_t0_done = [&](int priority) {
        mem::main_memory m;
        smt::smt_config cfg;
        cfg.priority_thread = priority;
        smt::smt_model model(cfg, m);
        model.load(0, prog0);
        model.load(1, prog1);
        std::uint64_t cycles = 0;
        while (!model.thread_done(0) && cycles < 100000) {
            model.run(1);
            ++cycles;
        }
        return cycles;
    };
    const auto fair = cycles_until_t0_done(-1);
    const auto boosted = cycles_until_t0_done(0);
    EXPECT_LE(boosted, fair);
}

TEST(Smt, IcountPolicyRunsBothThreads) {
    mem::main_memory m;
    smt::smt_config cfg;
    cfg.policy = smt::fetch_policy::icount;
    smt::smt_model model(cfg, m);
    model.load(0, summing(60, 0x1000));
    model.load(1, chain(25, 5, 0x5000));
    model.run(1'000'000);
    EXPECT_TRUE(model.all_done());
    EXPECT_GT(model.stats().retired[0], 0u);
    EXPECT_GT(model.stats().retired[1], 0u);
    EXPECT_EQ(model.gpr(0, 4), 1830u);
}

TEST(Smt, FourThreads) {
    mem::main_memory m;
    smt::smt_config cfg;
    cfg.threads = 4;
    cfg.num_osms = 12;
    smt::smt_model model(cfg, m);
    for (unsigned t = 0; t < 4; ++t) {
        model.load(t, summing(10 * (t + 1), 0x1000 + t * 0x4000));
    }
    model.run(1'000'000);
    EXPECT_TRUE(model.all_done());
    EXPECT_EQ(model.gpr(0, 4), 55u);
    EXPECT_EQ(model.gpr(1, 4), 210u);
    EXPECT_EQ(model.gpr(2, 4), 465u);
    EXPECT_EQ(model.gpr(3, 4), 820u);
}

TEST(Smt, SingleThreadDegeneratesGracefully) {
    mem::main_memory m;
    smt::smt_config cfg;
    cfg.threads = 1;
    smt::smt_model model(cfg, m);
    model.load(0, summing(30, 0x1000));
    model.run(1'000'000);
    EXPECT_TRUE(model.all_done());
    EXPECT_EQ(model.gpr(0, 4), 465u);
}

TEST(Smt, ConsoleInterleavesByRetirement) {
    mem::main_memory m;
    smt::smt_config cfg;
    smt::smt_model model(cfg, m);
    model.load(0, isa::assemble("li a0, 65\nsyscall 1\nsyscall 0\n", 0x1000));
    model.load(1, isa::assemble("li a0, 66\nsyscall 1\nsyscall 0\n", 0x5000));
    model.run(100000);
    // Both characters appear exactly once, order depends on interleaving.
    const std::string c = model.console();
    EXPECT_EQ(c.size(), 2u);
    EXPECT_NE(c.find('A'), std::string::npos);
    EXPECT_NE(c.find('B'), std::string::npos);
}

}  // namespace
