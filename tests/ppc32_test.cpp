// PPC32 front-end reference tests.
//
// The decoder, assembler and disassembler here are generated from
// src/isa/specs/ppc32.spec by osm-decgen, so these tests pin the spec to
// the *architecture*: decode is checked against hand-assembled PowerPC
// words (standard OPCD/XO encodings, independently computed), and the
// executor against hand-computed architectural traces — CTR loops, XER.CA
// producers, rlwinm rotate-and-mask, cr0 compare/branch, big-endian
// memory, bl/mflr/blr linkage and the sc console.  A drift in the spec,
// the generator or the shim shows up as a wrong word or a wrong trace.
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "mem/main_memory.hpp"
#include "ppc32/assembler.hpp"
#include "ppc32/decode.hpp"
#include "ppc32/disasm.hpp"
#include "ppc32/iss.hpp"
#include "ppc32/randprog.hpp"
#include "sim/engine.hpp"
#include "sim/registry.hpp"

namespace {

using namespace osm;
using ppc32::pop;

// ---- decode against independently hand-assembled words ---------------------

struct word_case {
    std::uint32_t word;
    pop code;
    unsigned rd, ra, rb;
    std::int32_t imm;
};

TEST(Ppc32Decode, MatchesHandAssembledWords) {
    // Standard big-endian PowerPC encodings, computed by hand from the
    // OPCD/XO tables (not from the spec file).
    const word_case cases[] = {
        {0x38600005u, pop::addi, 3, 0, 0, 5},        // addi r3, r0, 5  (li)
        {0x3C601234u, pop::addis, 3, 0, 0, 0x1234},  // addis r3, r0, 0x1234
        {0x7C632214u, pop::add, 3, 3, 4, 0},         // add r3, r3, r4
        {0x7D2903A6u, pop::mtctr, 9, 0, 0, 0},       // mtctr r9
        {0x4E800020u, pop::bclr, 20, 0, 0, 0},       // blr (BO=20, BI=0)
        {0x4200FFFCu, pop::bc, 16, 0, 0, -4},        // bdnz .-4
        {0x44000002u, pop::sc, 0, 0, 0, 0},          // sc
        {0x48000010u, pop::b, 0, 0, 0, 16},          // b .+16
        {0x48000011u, pop::bl, 0, 0, 0, 16},         // bl .+16
        {0x90610008u, pop::stw, 0, 1, 3, 8},         // stw r3, 8(r1)
        {0x80610008u, pop::lwz, 3, 1, 0, 8},         // lwz r3, 8(r1)
        {0x2C030005u, pop::cmpwi, 0, 3, 0, 5},       // cmpwi r3, 5
        // rlwinm r4, r3, 8, 0, 23: imm packs SH<<10 | MB<<5 | ME.
        {0x5464402Eu, pop::rlwinm, 4, 3, 0, (8 << 10) | (0 << 5) | 23},
    };
    for (const auto& c : cases) {
        const ppc32::pinst di = ppc32::decode(c.word);
        EXPECT_EQ(di.code, c.code) << std::hex << c.word;
        EXPECT_EQ(di.rd, c.rd) << std::hex << c.word;
        EXPECT_EQ(di.ra, c.ra) << std::hex << c.word;
        EXPECT_EQ(di.rb, c.rb) << std::hex << c.word;
        EXPECT_EQ(di.imm, c.imm) << std::hex << c.word;
        // The generated encoder must reproduce the exact word.
        EXPECT_EQ(ppc32::encode(di), c.word) << std::hex << c.word;
    }
}

TEST(Ppc32Decode, RejectsUndefinedWords) {
    // 0xEC000000 is OPCD 59 (FP single) — outside the integer subset.
    for (std::uint32_t w : {0xFFFFFFFFu, 0x00000000u, 0xEC000000u}) {
        EXPECT_EQ(ppc32::decode(w).code, pop::invalid) << std::hex << w;
    }
    EXPECT_EQ(ppc32::disassemble_word(0xFFFFFFFFu, 0x1000), ".word 0xFFFFFFFF");
}

// ---- assembler emits the canonical encodings --------------------------------

std::uint32_t nth_text_word(const isa::program_image& img, unsigned n) {
    mem::main_memory m;
    img.load_into(m);
    return ppc32::read32be(m, img.entry + 4 * n);
}

TEST(Ppc32Assembler, EmitsCanonicalWords) {
    const auto img = ppc32::assemble(R"(
_start: li r3, 5
        add r3, r3, r4
        mtctr r9
        blr
        sc
        stw r3, 8(r1)
        lwz r3, 8(r1)
        cmpwi r3, 5
        rlwinm r4, r3, 8, 0, 23
)");
    const std::uint32_t expect[] = {0x38600005u, 0x7C632214u, 0x7D2903A6u,
                                    0x4E800020u, 0x44000002u, 0x90610008u,
                                    0x80610008u, 0x2C030005u, 0x5464402Eu};
    ASSERT_EQ(img.entry, 0x1000u);
    for (unsigned i = 0; i < std::size(expect); ++i) {
        EXPECT_EQ(nth_text_word(img, i), expect[i]) << "word " << i;
    }
}

TEST(Ppc32Assembler, BranchDisplacementIsRelativeToBranchItself) {
    // PPC branch displacement is anchored at the branch's own address,
    // not pc+4 (the VR32 convention) — a one-word backward loop is -4.
    const auto img = ppc32::assemble(R"(
_start: li r3, 2
        mtctr r3
loop:   mfctr r4
        bdnz loop
        sc
)");
    EXPECT_EQ(nth_text_word(img, 3), 0x4200FFFCu);
}

TEST(Ppc32Assembler, RejectsMalformedInput) {
    EXPECT_THROW(ppc32::assemble("bogus r1, r2"), isa::asm_error);
    EXPECT_THROW(ppc32::assemble("addi r3, r0, 99999"), isa::asm_error);
    EXPECT_THROW(ppc32::assemble("add r3, r0"), isa::asm_error);
    EXPECT_THROW(ppc32::assemble("b nowhere"), isa::asm_error);
}

// ---- hand-computed reference traces through the functional ISS -------------

struct trace_result {
    ppc32::ppc_state st;
    std::string console;
    std::uint64_t retired = 0;
};

trace_result run_iss(const char* src) {
    mem::main_memory m;
    ppc32::ppc_iss sim(m);
    sim.load(ppc32::assemble(src));
    sim.run(1'000'000);
    return {sim.state(), sim.console(), sim.instret()};
}

TEST(Ppc32Trace, CtrLoopSums1To100) {
    const auto t = run_iss(R"(
_start: li r3, 0
        li r4, 100
        mtctr r4
loop:   mfctr r5
        add r3, r3, r5
        bdnz loop
        li r0, 2
        sc
        li r0, 3
        sc
        li r0, 0
        sc
)");
    EXPECT_TRUE(t.st.halted);
    EXPECT_EQ(t.st.r[3], 5050u);
    EXPECT_EQ(t.st.ctr, 0u);
    EXPECT_EQ(t.console, "5050\n");
    // 3 setup + 100 iterations x 3 + 6 syscall tail.
    EXPECT_EQ(t.retired, 3u + 300u + 6u);
}

TEST(Ppc32Trace, CarryProducers) {
    mem::main_memory m;
    ppc32::ppc_iss sim(m);
    sim.load(ppc32::assemble(R"(
_start: li r3, -1
        addic r4, r3, 1
        subfic r5, r3, 0
        srawi r6, r3, 4
        li r0, 0
        sc
)"));
    sim.run(2);  // li + addic: 0xFFFFFFFF + 1 wraps, CA set
    EXPECT_EQ(sim.state().r[4], 0u);
    EXPECT_TRUE(sim.state().ca);
    sim.run(1);  // subfic: 0 - (-1) = 1, no carry out of ~a + imm + 1
    EXPECT_EQ(sim.state().r[5], 1u);
    EXPECT_FALSE(sim.state().ca);
    sim.run(1);  // srawi: -1 >> 4 arithmetic = -1, shifted-out bits set CA
    EXPECT_EQ(sim.state().r[6], 0xFFFFFFFFu);
    EXPECT_TRUE(sim.state().ca);
}

TEST(Ppc32Trace, RotateAndMask) {
    const auto t = run_iss(R"(
_start: lis r3, 0x1234
        ori r3, r3, 0x5678
        rlwinm r4, r3, 8, 0, 31
        rlwinm r5, r3, 0, 24, 31
        rlwinm r6, r3, 16, 16, 31
        li r0, 0
        sc
)");
    EXPECT_EQ(t.st.r[3], 0x12345678u);
    EXPECT_EQ(t.st.r[4], 0x34567812u);  // rotl 8, full mask
    EXPECT_EQ(t.st.r[5], 0x00000078u);  // low-byte extract
    EXPECT_EQ(t.st.r[6], 0x00001234u);  // halfword swap + mask
}

TEST(Ppc32Trace, Cr0CompareAndBranch) {
    const auto t = run_iss(R"(
_start: li r3, 7
        cmpwi r3, 10
        blt less
        li r4, 1
        b done
less:   li r4, 2
done:   cmpwi r3, 7
        bne off
        li r5, 3
off:    cmplwi r3, 3
        bgt big
        li r6, 9
big:    li r0, 0
        sc
)");
    EXPECT_EQ(t.st.r[4], 2u);  // 7 < 10: blt taken
    EXPECT_EQ(t.st.r[5], 3u);  // 7 == 7: bne not taken
    EXPECT_EQ(t.st.r[6], 0u);  // 7 >u 3: bgt taken, li r6 skipped
}

TEST(Ppc32Trace, BigEndianMemory) {
    const auto t = run_iss(R"(
_start: lis r9, 0x0010
        lis r3, 0x1122
        ori r3, r3, 0x3344
        stw r3, 0(r9)
        lbz r4, 0(r9)
        lbz r5, 3(r9)
        lhz r6, 0(r9)
        lha r7, 2(r9)
        li r8, -2
        sth r8, 4(r9)
        lha r10, 4(r9)
        lhz r11, 4(r9)
        li r0, 0
        sc
)");
    EXPECT_EQ(t.st.r[4], 0x11u);  // MSB at the lowest address
    EXPECT_EQ(t.st.r[5], 0x44u);
    EXPECT_EQ(t.st.r[6], 0x1122u);
    EXPECT_EQ(t.st.r[7], 0x3344u);
    EXPECT_EQ(t.st.r[10], 0xFFFFFFFEu);  // lha sign-extends
    EXPECT_EQ(t.st.r[11], 0xFFFEu);      // lhz does not
}

TEST(Ppc32Trace, CallAndReturnLinkage) {
    const auto t = run_iss(R"(
_start: bl func
after:  li r0, 2
        sc
        li r0, 0
        sc
func:   mflr r6
        li r3, 42
        blr
)");
    EXPECT_EQ(t.console, "42");
    EXPECT_EQ(t.st.r[6], 0x1004u);  // lr = address of `after`
}

TEST(Ppc32Trace, DivisionAndHighMultiplyEdges) {
    const auto t = run_iss(R"(
_start: lis r3, 0x8000
        li r4, -1
        divw r5, r3, r4
        li r6, 0
        divw r7, r3, r6
        li r8, 100
        li r9, 7
        divw r10, r8, r9
        divwu r11, r4, r9
        mulhw r12, r8, r4
        mulhwu r13, r4, r4
        li r0, 0
        sc
)");
    EXPECT_EQ(t.st.r[5], 0u);           // INT_MIN / -1 defined as 0
    EXPECT_EQ(t.st.r[7], 0u);           // divide by zero defined as 0
    EXPECT_EQ(t.st.r[10], 14u);         // 100 / 7
    EXPECT_EQ(t.st.r[11], 613566756u);  // 0xFFFFFFFF / 7
    EXPECT_EQ(t.st.r[12], 0xFFFFFFFFu); // high(100 * -1) signed
    EXPECT_EQ(t.st.r[13], 0xFFFFFFFEu); // high((2^32-1)^2) unsigned
}

TEST(Ppc32Trace, InvalidOpcodeHaltsAsTrap) {
    mem::main_memory m;
    ppc32::ppc_iss sim(m);
    isa::program_image img;
    img.entry = 0x1000;
    img.segments.push_back({0x1000, {0xFF, 0xFF, 0xFF, 0xFF}});
    sim.load(img);
    sim.run(10);
    EXPECT_TRUE(sim.state().halted);
}

// ---- disassembler round-trips the whole generated vocabulary ---------------

TEST(Ppc32Disasm, EncodeDecodeRoundTripOverRandomPrograms) {
    for (std::uint64_t seed : {1u, 2u, 3u}) {
        ppc32::randprog_options opt;
        opt.seed = seed;
        const auto img = ppc32::make_random_program(opt);
        mem::main_memory m;
        img.load_into(m);
        std::size_t checked = 0;
        for (const auto& seg : img.segments) {
            if (img.entry < seg.base ||
                img.entry >= seg.base + seg.bytes.size()) {
                continue;  // text segment only
            }
            for (std::uint32_t a = seg.base;
                 a + 4 <= seg.base + seg.bytes.size(); a += 4) {
                const std::uint32_t w = ppc32::read32be(m, a);
                const ppc32::pinst di = ppc32::decode(w);
                ASSERT_NE(di.code, pop::invalid)
                    << "seed " << seed << " @" << std::hex << a;
                EXPECT_EQ(ppc32::encode(di), w) << std::hex << a;
                EXPECT_FALSE(ppc32::disassemble(di, a).empty());
                ++checked;
            }
        }
        EXPECT_GT(checked, 20u) << "seed " << seed;
    }
}

TEST(Ppc32Disasm, RendersCanonicalForms) {
    EXPECT_EQ(ppc32::disassemble_word(0x38600005u, 0x1000), "addi r3, r0, 5");
    EXPECT_EQ(ppc32::disassemble_word(0x7C632214u, 0x1000), "add r3, r3, r4");
    EXPECT_EQ(ppc32::disassemble_word(0x80610008u, 0x1000), "lwz r3, 8(r1)");
    EXPECT_EQ(ppc32::disassemble_word(0x90610008u, 0x1000), "stw r3, 8(r1)");
    EXPECT_EQ(ppc32::disassemble_word(0x44000002u, 0x1000), "sc");
}

// ---- ppc32-750 timing model -------------------------------------------------

TEST(Ppc32Timing, CyclesRespectIssueWidthAndRetirement) {
    const char* src = R"(
_start: li r3, 0
        li r4, 100
        mtctr r4
loop:   mfctr r5
        add r3, r3, r5
        bdnz loop
        li r0, 0
        sc
)";
    auto iss = sim::make_engine("ppc32");
    auto tim = sim::make_engine("ppc32-750");
    const auto img = ppc32::assemble(src);
    iss->load(img);
    tim->load(img);
    iss->run(1'000'000);
    tim->run(10'000'000);
    ASSERT_TRUE(iss->halted());
    ASSERT_TRUE(tim->halted());
    // Same architectural trajectory...
    EXPECT_EQ(tim->retired(), iss->retired());
    EXPECT_EQ(tim->gpr(3), iss->gpr(3));
    // ...with a plausible dual-issue in-order cycle account: IPC <= 2,
    // and the scoreboard can't beat one cycle per dependent instruction.
    EXPECT_GE(tim->cycles() * 2, tim->retired());
    EXPECT_GE(tim->cycles(), iss->retired() / 2);
    EXPECT_TRUE(tim->models_timing());
    EXPECT_FALSE(iss->models_timing());
}

TEST(Ppc32Timing, IndependentCodeIssuesWiderThanDependentChain) {
    const char* independent = R"(
_start: li r3, 1
        li r4, 2
        li r5, 3
        li r6, 4
        li r7, 5
        li r8, 6
        li r0, 0
        sc
)";
    const char* dependent = R"(
_start: li r3, 1
        addi r3, r3, 1
        addi r3, r3, 1
        addi r3, r3, 1
        addi r3, r3, 1
        addi r3, r3, 1
        li r0, 0
        sc
)";
    auto a = sim::make_engine("ppc32-750");
    auto b = sim::make_engine("ppc32-750");
    a->load(ppc32::assemble(independent));
    b->load(ppc32::assemble(dependent));
    a->run(10'000);
    b->run(10'000);
    ASSERT_TRUE(a->halted());
    ASSERT_TRUE(b->halted());
    EXPECT_EQ(a->retired(), b->retired());
    EXPECT_LT(a->cycles(), b->cycles());
    EXPECT_EQ(b->gpr(3), 6u);
}

// ---- sim::engine adapters and registry segregation -------------------------

TEST(Ppc32Engine, RegistryEntriesAndIsaTag) {
    const auto ppc = sim::engine_registry::instance().names_for_isa("ppc32");
    const std::set<std::string> have(ppc.begin(), ppc.end());
    EXPECT_TRUE(have.count("ppc32"));
    EXPECT_TRUE(have.count("ppc32-750"));
    for (const auto& name : sim::engine_registry::instance().names_for_isa("vr32")) {
        EXPECT_FALSE(have.count(name)) << name << " tagged both isas";
    }
    for (const auto& name : ppc) {
        EXPECT_EQ(sim::make_engine(name)->isa(), "ppc32") << name;
    }
}

TEST(Ppc32Engine, StatsReportCarriesUniformSchema) {
    const auto img = ppc32::assemble(R"(
_start: li r3, 5050
        li r0, 2
        sc
        li r0, 3
        sc
        li r0, 0
        sc
)");
    for (const char* name : {"ppc32", "ppc32-750"}) {
        auto e = sim::make_engine(name);
        e->load(img);
        e->run(1'000'000);
        ASSERT_TRUE(e->halted()) << name;
        EXPECT_EQ(e->console(), "5050\n") << name;
        const auto rep = e->stats_report();
        EXPECT_EQ(std::get<std::string>(rep.at("engine", "name")), name);
        EXPECT_EQ(std::get<std::uint64_t>(rep.at("run", "cycles")), e->cycles());
        EXPECT_EQ(std::get<std::uint64_t>(rep.at("run", "retired")), e->retired());
        EXPECT_EQ(std::get<std::uint64_t>(rep.at("run", "halted")), 1u) << name;
        EXPECT_NO_THROW(rep.at("ppc32", "retired")) << name;
        EXPECT_FALSE(rep.to_json().empty()) << name;
    }
}

}  // namespace
