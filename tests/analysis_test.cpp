// Analysis module: reservation tables, lint, dot/ASM export, static
// allocation-order checking — on hand-built graphs and on the real models.
#include <gtest/gtest.h>

#include "analysis/analysis.hpp"
#include "mem/main_memory.hpp"
#include "ppc750/ppc750.hpp"
#include "sarm/sarm.hpp"

namespace {

using namespace osm;
using core::ident_expr;
using core::osm_graph;
using core::unit_token_manager;

/// Build a 3-stage pipeline graph: I -F> D -> W -> I.
struct pipe3 {
    unit_token_manager mf{"mf"}, md{"md"}, mw{"mw"};
    osm_graph g{"pipe3"};

    pipe3() {
        const auto I = g.add_state("I");
        const auto F = g.add_state("F");
        const auto D = g.add_state("D");
        const auto W = g.add_state("W");
        auto e = g.add_edge(I, F);
        g.edge_allocate(e, mf, ident_expr::value(0));
        e = g.add_edge(F, D);
        g.edge_release(e, mf, ident_expr::value(0));
        g.edge_allocate(e, md, ident_expr::value(0));
        e = g.add_edge(D, W);
        g.edge_release(e, md, ident_expr::value(0));
        g.edge_allocate(e, mw, ident_expr::value(0));
        e = g.add_edge(W, I);
        g.edge_release(e, mw, ident_expr::value(0));
        g.finalize();
    }
};

TEST(Analysis, ReservationTableTracksHeldResources) {
    pipe3 p;
    const auto t = analysis::extract_reservation_table(p.g, "mw");
    ASSERT_EQ(t.table.size(), 3u);
    EXPECT_EQ(t.table[0].state, "F");
    EXPECT_EQ(t.table[0].held_tokens, std::vector<std::string>{"mf"});
    EXPECT_EQ(t.table[1].state, "D");
    EXPECT_EQ(t.table[1].held_tokens, std::vector<std::string>{"md"});
    EXPECT_EQ(t.table[2].state, "W");
    EXPECT_EQ(t.table[2].held_tokens, std::vector<std::string>{"mw"});
    EXPECT_EQ(t.result_latency, 3);  // mw released on the W->I edge
}

TEST(Analysis, LintCleanGraph) {
    pipe3 p;
    const auto rep = analysis::lint(p.g);
    EXPECT_TRUE(rep.clean()) << "unexpected findings";
}

TEST(Analysis, LintFindsUnreachableAndSinkStates) {
    unit_token_manager m("m");
    osm_graph g("bad");
    const auto I = g.add_state("I");
    const auto A = g.add_state("A");
    g.add_state("orphan");
    const auto sink = g.add_state("sink");
    g.add_edge(I, A);
    g.add_edge(A, sink);
    g.finalize();
    const auto rep = analysis::lint(g);
    EXPECT_EQ(rep.unreachable_states, std::vector<std::string>{"orphan"});
    EXPECT_EQ(rep.sink_states, std::vector<std::string>{"sink"});
}

TEST(Analysis, LintFindsTokenLeak) {
    unit_token_manager m("m");
    osm_graph g("leaky");
    const auto I = g.add_state("I");
    const auto H = g.add_state("H");
    auto e = g.add_edge(I, H);
    g.edge_allocate(e, m, ident_expr::value(0));
    g.add_edge(H, I);  // returns to I still holding m's token!
    g.finalize();
    const auto rep = analysis::lint(g);
    ASSERT_EQ(rep.token_leaks.size(), 1u);
    EXPECT_NE(rep.token_leaks[0].find("m"), std::string::npos);
}

TEST(Analysis, ResetEdgeWithDiscardAllIsNotALeak) {
    unit_token_manager m("m");
    osm_graph g("reset_ok");
    const auto I = g.add_state("I");
    const auto H = g.add_state("H");
    auto e = g.add_edge(I, H);
    g.edge_allocate(e, m, ident_expr::value(0));
    auto r = g.add_edge(H, I, 10);
    g.edge_discard_all(r);
    auto n = g.add_edge(H, I);
    g.edge_release(n, m, ident_expr::value(0));
    g.finalize();
    EXPECT_TRUE(analysis::lint(g).clean());
}

TEST(Analysis, DotExportNamesEverything) {
    pipe3 p;
    const std::string dot = analysis::to_dot(p.g);
    EXPECT_NE(dot.find("digraph"), std::string::npos);
    EXPECT_NE(dot.find("doublecircle"), std::string::npos);  // initial state
    EXPECT_NE(dot.find("allocate(mf, 0)"), std::string::npos);
    EXPECT_NE(dot.find("release(mw, 0)"), std::string::npos);
}

TEST(Analysis, AsmRulesExport) {
    pipe3 p;
    const std::string rules = analysis::to_asm_rules(p.g);
    EXPECT_NE(rules.find("asm-machine pipe3"), std::string::npos);
    EXPECT_NE(rules.find("if ctl = I"), std::string::npos);
    EXPECT_NE(rules.find("ctl := F"), std::string::npos);
}

TEST(Analysis, ReferencedManagersInOrder) {
    pipe3 p;
    const auto mgrs = analysis::referenced_managers(p.g);
    ASSERT_EQ(mgrs.size(), 3u);
    EXPECT_EQ(mgrs[0]->name(), "mf");
    EXPECT_EQ(mgrs[1]->name(), "md");
    EXPECT_EQ(mgrs[2]->name(), "mw");
}

TEST(Analysis, AllocationOrderConsistentOnPipeline) {
    pipe3 p;
    EXPECT_TRUE(analysis::allocation_order_consistent(p.g));
}

TEST(Analysis, AllocationOrderCycleDetected) {
    unit_token_manager ma("ma"), mb("mb");
    osm_graph g("cyclic");
    const auto I = g.add_state("I");
    const auto A = g.add_state("A");
    const auto B = g.add_state("B");
    // Path 1 allocates ma then mb; path 2 allocates mb then ma.
    auto e = g.add_edge(I, A);
    g.edge_allocate(e, ma, ident_expr::value(0));
    e = g.add_edge(A, B);
    g.edge_allocate(e, mb, ident_expr::value(0));
    e = g.add_edge(I, B);
    g.edge_allocate(e, mb, ident_expr::value(0));
    e = g.add_edge(B, A);
    g.edge_allocate(e, ma, ident_expr::value(0));
    g.finalize();
    EXPECT_FALSE(analysis::allocation_order_consistent(g));
}

TEST(Analysis, RealModelsPassLint) {
    mem::main_memory m1, m2;
    sarm::sarm_model sm(sarm::sarm_config{}, m1);
    ppc750::p750_model pm(ppc750::p750_config{}, m2);
    EXPECT_TRUE(analysis::lint(sm.graph()).clean());
    EXPECT_TRUE(analysis::allocation_order_consistent(sm.graph()));
    // The P750 graph uses per-instance edge enables to route operations to
    // one of six units; the manager-granular may-hold analysis merges the
    // alternative paths and conservatively flags the *other* units' tokens
    // at C->I.  All findings must be of that one benign class.
    const auto rep = analysis::lint(pm.graph());
    EXPECT_TRUE(rep.unreachable_states.empty());
    EXPECT_TRUE(rep.sink_states.empty());
    for (const std::string& leak : rep.token_leaks) {
        EXPECT_NE(leak.find("edge C->I"), std::string::npos) << leak;
        const bool unit_class = leak.find(" m_IU") != std::string::npos ||
                                leak.find(" m_FPU") != std::string::npos ||
                                leak.find(" m_LSU") != std::string::npos ||
                                leak.find(" m_SRU") != std::string::npos ||
                                leak.find(" m_BPU") != std::string::npos ||
                                leak.find(" m_rs_") != std::string::npos;
        EXPECT_TRUE(unit_class) << leak;
    }
}

TEST(Analysis, SarmReservationTableShape) {
    mem::main_memory m1;
    sarm::sarm_model sm(sarm::sarm_config{}, m1);
    const auto t = analysis::extract_reservation_table(sm.graph(), "m_w");
    ASSERT_EQ(t.table.size(), 5u);  // F D E B W
    EXPECT_EQ(t.table[0].state, "F");
    EXPECT_EQ(t.table[4].state, "W");
    EXPECT_EQ(t.result_latency, 5);
}

TEST(Analysis, ModelsExportNonTrivialDot) {
    mem::main_memory m2;
    ppc750::p750_model pm(ppc750::p750_config{}, m2);
    const std::string dot = analysis::to_dot(pm.graph());
    // 5 states, 6 units x 4 edges + fetch + 4 resets + completion.
    EXPECT_GT(dot.size(), 2000u);
    EXPECT_NE(dot.find("m_rs_IU2"), std::string::npos);
}

}  // namespace
