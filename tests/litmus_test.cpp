// Litmus-test differential suite (src/fuzz/litmus.*): the committed corpus
// under tests/corpus/litmus/ must match re-enumeration exactly; the
// multi-hart ISS must never escape the exhaustively enumerated outcome set
// of its configured model (SC or TSO); the model-distinguishing outcomes
// must actually be reached (SB's r1==0 && r2==0 under TSO) and stay
// unreachable where forbidden (SB under SC, SB+fences under both); and
// every run is a deterministic function of (test, model, schedule seed).
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "common/xrandom.hpp"
#include "fuzz/litmus.hpp"
#include "isa/mh_iss.hpp"
#include "mem/main_memory.hpp"

#ifndef OSM_LITMUS_CORPUS_DIR
#define OSM_LITMUS_CORPUS_DIR "tests/corpus/litmus"
#endif

namespace {

using namespace osm;
using fuzz::litmus_outcome;
using fuzz::litmus_test;

std::string read_file(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in) ADD_FAILURE() << "cannot open " << path;
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

std::vector<std::string> corpus_files() {
    std::vector<std::string> files;
    for (const auto& e : std::filesystem::directory_iterator(OSM_LITMUS_CORPUS_DIR)) {
        if (e.path().extension() == ".litmus") files.push_back(e.path().string());
    }
    std::sort(files.begin(), files.end());
    return files;
}

litmus_test find_test(const std::string& name) {
    for (auto& t : fuzz::litmus_suite()) {
        if (t.name == name) return t;
    }
    ADD_FAILURE() << "suite has no test named " << name;
    return {};
}

/// The SB observation slots are [(hart0, r0), (hart1, r0)]; 0/0 is the
/// store-buffering outcome TSO allows and SC forbids.
const litmus_outcome k_sb_zero_zero{0, 0};

std::string outcomes_string(const std::set<litmus_outcome>& s) {
    std::string out;
    for (const auto& o : s) {
        if (!out.empty()) out += ' ';
        out += fuzz::outcome_to_string(o);
    }
    return out;
}

// ---------------------------------------------------------------------------
// Committed corpus.
// ---------------------------------------------------------------------------

// Every committed .litmus file re-enumerates to exactly the recorded
// sc:/tso: sets — the corpus is a regression pin on both operational
// models, not just documentation.
TEST(LitmusCorpus, RecordedOutcomeSetsMatchReenumeration) {
    const auto files = corpus_files();
    ASSERT_FALSE(files.empty()) << "no .litmus files under " << OSM_LITMUS_CORPUS_DIR;
    for (const auto& path : files) {
        const auto t = fuzz::parse_litmus(read_file(path));
        EXPECT_EQ(fuzz::enumerate_outcomes(t, mem::memory_model::sc), t.sc_allowed)
            << path << " sc set";
        EXPECT_EQ(fuzz::enumerate_outcomes(t, mem::memory_model::tso), t.tso_allowed)
            << path << " tso set";
    }
}

// The canonical suite round-trips through the corpus text format without
// losing structure or outcome sets.
TEST(LitmusCorpus, TextFormatRoundTripsTheSuite) {
    for (auto t : fuzz::litmus_suite()) {
        t.sc_allowed = fuzz::enumerate_outcomes(t, mem::memory_model::sc);
        t.tso_allowed = fuzz::enumerate_outcomes(t, mem::memory_model::tso);
        const auto back = fuzz::parse_litmus(fuzz::to_text(t));
        EXPECT_EQ(back.name, t.name);
        EXPECT_EQ(back.locations, t.locations);
        ASSERT_EQ(back.harts.size(), t.harts.size());
        EXPECT_EQ(back.sc_allowed, t.sc_allowed);
        EXPECT_EQ(back.tso_allowed, t.tso_allowed);
        EXPECT_EQ(fuzz::to_text(back), fuzz::to_text(t));
    }
}

// ---------------------------------------------------------------------------
// Model-distinguishing outcomes (the ISSUE's acceptance criteria).
// ---------------------------------------------------------------------------

// SB's r1==0 && r2==0: forbidden by SC — absent from the exhaustive
// enumeration and never observed across 1000 seeded schedules.
TEST(LitmusModels, StoreBufferingZeroZeroNeverUnderSC) {
    const auto sb = find_test("SB");
    const auto allowed = fuzz::enumerate_outcomes(sb, mem::memory_model::sc);
    EXPECT_FALSE(allowed.count(k_sb_zero_zero))
        << "SC enumeration allows 0,0: " << outcomes_string(allowed);
    const auto observed = fuzz::run_litmus(sb, mem::memory_model::sc, 1, 1000);
    EXPECT_FALSE(observed.count(k_sb_zero_zero))
        << "multi-hart ISS under SC reached the store-buffering outcome";
    for (const auto& o : observed) {
        EXPECT_TRUE(allowed.count(o))
            << "SC run escaped the SC model: " << fuzz::outcome_to_string(o);
    }
}

// ...allowed by TSO — present in the enumeration and actually reached by
// the store-buffer implementation within a bounded schedule sweep.
TEST(LitmusModels, StoreBufferingZeroZeroObservedUnderTSO) {
    const auto sb = find_test("SB");
    const auto allowed = fuzz::enumerate_outcomes(sb, mem::memory_model::tso);
    EXPECT_TRUE(allowed.count(k_sb_zero_zero))
        << "TSO enumeration misses 0,0: " << outcomes_string(allowed);
    const auto observed = fuzz::run_litmus(sb, mem::memory_model::tso, 1, 1000);
    EXPECT_TRUE(observed.count(k_sb_zero_zero))
        << "store buffers never surfaced 0,0 in 1000 schedules; observed: "
        << outcomes_string(observed);
}

// ...and forbidden under BOTH models once fences separate the store from
// the load (SB+fences drains the buffer before each load).
TEST(LitmusModels, FencedStoreBufferingForbidsZeroZeroUnderBothModels) {
    const auto sbf = find_test("SB+fences");
    for (const auto model : {mem::memory_model::sc, mem::memory_model::tso}) {
        const auto allowed = fuzz::enumerate_outcomes(sbf, model);
        EXPECT_FALSE(allowed.count(k_sb_zero_zero))
            << mem::memory_model_name(model) << " enumeration allows fenced 0,0";
        const auto observed = fuzz::run_litmus(sbf, model, 1, 500);
        EXPECT_FALSE(observed.count(k_sb_zero_zero))
            << mem::memory_model_name(model) << " run reached fenced 0,0";
    }
}

// SC is the stronger model: everything SC allows, TSO allows too, on every
// suite test.
TEST(LitmusModels, SCOutcomesAreASubsetOfTSO) {
    for (const auto& t : fuzz::litmus_suite()) {
        const auto sc = fuzz::enumerate_outcomes(t, mem::memory_model::sc);
        const auto tso = fuzz::enumerate_outcomes(t, mem::memory_model::tso);
        for (const auto& o : sc) {
            EXPECT_TRUE(tso.count(o)) << t.name << ": SC-only outcome "
                                      << fuzz::outcome_to_string(o);
        }
    }
}

// ---------------------------------------------------------------------------
// Differential oracle: the ISS never escapes the enumerated set.
// ---------------------------------------------------------------------------

TEST(LitmusOracle, SuiteRunsStayInsideTheEnumeratedSets) {
    for (const auto& t : fuzz::litmus_suite()) {
        for (const auto model : {mem::memory_model::sc, mem::memory_model::tso}) {
            const auto allowed = fuzz::enumerate_outcomes(t, model);
            const auto observed = fuzz::run_litmus(t, model, 1, 200);
            EXPECT_FALSE(observed.empty()) << t.name;
            for (const auto& o : observed) {
                EXPECT_TRUE(allowed.count(o))
                    << t.name << " under " << mem::memory_model_name(model)
                    << ": out-of-model outcome " << fuzz::outcome_to_string(o);
            }
        }
    }
}

TEST(LitmusOracle, RandomTestsStayInsideTheEnumeratedSets) {
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
        xrandom rng(seed);
        const auto t = fuzz::random_litmus(rng);
        for (const auto model : {mem::memory_model::sc, mem::memory_model::tso}) {
            const auto allowed = fuzz::enumerate_outcomes(t, model);
            const auto observed = fuzz::run_litmus(t, model, 1, 100);
            for (const auto& o : observed) {
                EXPECT_TRUE(allowed.count(o))
                    << "random seed " << seed << " under "
                    << mem::memory_model_name(model) << ": out-of-model outcome "
                    << fuzz::outcome_to_string(o);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Determinism: a run is a pure function of (test, model, schedule seed).
// ---------------------------------------------------------------------------

TEST(LitmusDeterminism, SameScheduleSeedReproducesTheMachineBitForBit) {
    const auto sb = find_test("SB");
    const auto img = fuzz::compile_litmus(sb);
    for (const auto model : {mem::memory_model::sc, mem::memory_model::tso}) {
        for (std::uint64_t sched = 1; sched <= 20; ++sched) {
            std::vector<std::uint32_t> digests[2];
            for (int rep = 0; rep < 2; ++rep) {
                mem::main_memory m;
                isa::mh_iss sim(m, static_cast<unsigned>(sb.harts.size()), model, sched);
                sim.load(img);
                sim.run(100'000);
                ASSERT_TRUE(sim.all_halted());
                auto& d = digests[rep];
                for (unsigned h = 0; h < sim.harts(); ++h) {
                    const isa::arch_state& st = sim.state(h);
                    d.push_back(st.pc);
                    for (const std::uint32_t r : st.gpr) d.push_back(r);
                    d.push_back(static_cast<std::uint32_t>(sim.instret(h)));
                }
            }
            EXPECT_EQ(digests[0], digests[1])
                << mem::memory_model_name(model) << " schedule " << sched;
        }
    }
}

TEST(LitmusDeterminism, RunLitmusIsReproducibleSeedBySeed) {
    const auto mp = find_test("MP");
    for (const auto model : {mem::memory_model::sc, mem::memory_model::tso}) {
        for (std::uint64_t sched = 1; sched <= 10; ++sched) {
            const auto a = fuzz::run_litmus(mp, model, sched, sched);
            const auto b = fuzz::run_litmus(mp, model, sched, sched);
            ASSERT_EQ(a.size(), 1u);
            EXPECT_EQ(a, b) << mem::memory_model_name(model) << " seed " << sched;
        }
    }
}

}  // namespace
