// P750 out-of-order superscalar model: dual issue, renaming, reservation
// stations (paper Fig. 2), in-order completion, misprediction recovery,
// speculative-store rollback.
#include <gtest/gtest.h>

#include "isa/assembler.hpp"
#include "isa/iss.hpp"
#include "mem/main_memory.hpp"
#include "ppc750/ppc750.hpp"

namespace {

using namespace osm;
using ppc750::p750_config;
using ppc750::p750_model;

struct run_result {
    ppc750::p750_stats stats;
    std::array<std::uint32_t, 32> gpr{};
    std::string console;
    bool halted = false;
};

run_result run(const isa::program_image& img, const p750_config& cfg = {}) {
    mem::main_memory memory;
    p750_model m(cfg, memory);
    m.load(img);
    m.run(5'000'000);
    run_result r;
    r.stats = m.stats();
    r.halted = m.halted();
    for (unsigned i = 0; i < 32; ++i) r.gpr[i] = m.gpr(i);
    r.console = m.console();
    return r;
}

TEST(P750, DualIssueExceedsIpcOne) {
    // A loop of independent ALU ops across IU1/IU2: once the I-cache and
    // the branch predictor warm up, IPC must exceed 1 (impossible on the
    // scalar SARM pipeline).
    std::string src = "li s0, 300\nloop:\n";
    for (int i = 0; i < 8; ++i) {
        src += "addi a" + std::to_string(i % 4) + ", zero, " + std::to_string(i) + "\n";
        src += "addi t" + std::to_string(i % 4) + ", zero, " + std::to_string(i) + "\n";
    }
    src += "addi s0, s0, -1\nbne s0, zero, loop\nhalt\n";
    const auto r = run(isa::assemble(src));
    EXPECT_TRUE(r.halted);
    EXPECT_GT(r.stats.ipc(), 1.0);
    EXPECT_GT(r.stats.direct_issues, 0u);
}

TEST(P750, RenamingRemovesWawAndWar) {
    // Repeated writes to one register with independent inputs: rename
    // buffers let them overlap.  Starving the machine of rename buffers
    // (1 GPR rename) serializes the same program measurably.
    std::string src = "li s0, 200\nloop:\n";
    for (int i = 0; i < 10; ++i) {
        src += "addi a0, zero, " + std::to_string(i) + "\n";
    }
    src += "addi s0, s0, -1\nbne s0, zero, loop\nhalt\n";
    const auto img = isa::assemble(src);
    p750_config starved;
    starved.gpr_renames = 1;
    const auto full = run(img);
    const auto serial = run(img, starved);
    EXPECT_EQ(full.gpr[4], 9u);
    EXPECT_EQ(serial.gpr[4], 9u);
    EXPECT_LT(full.stats.cycles + full.stats.cycles / 4, serial.stats.cycles)
        << "renaming must buy at least 25%";
}

TEST(P750, ReservationStationHoldsWaitingOp) {
    // A dependent of a long-latency divide must wait in the RS (Fig. 2
    // state R) and issue later: rs_issues > 0.
    const auto r = run(isa::assemble(R"(
        li a0, 1000
        li a1, 7
        div a2, a0, a1
        add a3, a2, a2   ; waits on the divide in the IU1 RS
        halt
    )"));
    EXPECT_EQ(r.gpr[6], 142u);
    EXPECT_EQ(r.gpr[7], 284u);
    EXPECT_GT(r.stats.rs_issues, 0u);
}

TEST(P750, ExecutesOutOfOrderAroundDivide) {
    // Independent work behind a divide should finish while the divide is
    // still executing: total cycles ≈ divide latency, not divide + adds.
    const auto with_adds = isa::assemble(R"(
        li a0, 1000
        li a1, 7
        div a2, a0, a1
        addi t0, zero, 1
        addi t1, zero, 2
        addi t2, zero, 3
        addi t3, zero, 4
        halt
    )");
    const auto bare = isa::assemble(R"(
        li a0, 1000
        li a1, 7
        div a2, a0, a1
        halt
    )");
    const auto ra = run(with_adds);
    const auto rb = run(bare);
    EXPECT_LE(ra.stats.cycles, rb.stats.cycles + 3)
        << "independent adds must hide under the divide's latency";
}

TEST(P750, BranchPredictorLearnsLoop) {
    const auto r = run(isa::assemble(R"(
        li a0, 0
        li a1, 200
loop:   addi a0, a0, 1
        blt a0, a1, loop
        halt
    )"));
    EXPECT_EQ(r.gpr[4], 200u);
    EXPECT_EQ(r.stats.branches, 200u);
    // Cold mispredicts at entry and the final not-taken exit only.
    EXPECT_LE(r.stats.mispredicts, 4u);
}

TEST(P750, MispredictSquashesWrongPath) {
    const auto r = run(isa::assemble(R"(
        li a0, 1
        beq a0, a0, target
        li a1, 111
        li a2, 222
target: li a3, 3
        halt
    )"));
    EXPECT_EQ(r.gpr[5], 0u);
    EXPECT_EQ(r.gpr[6], 0u);
    EXPECT_EQ(r.gpr[7], 3u);
    EXPECT_GT(r.stats.squashed, 0u);
}

TEST(P750, SpeculativeStoreRolledBack) {
    // The wrong path contains a store; after squash, memory must be clean.
    const auto img = isa::assemble(R"(
        li t0, 0x9000
        li t1, 0xAAAA
        sw t1, 0(t0)      ; correct-path store
        li a0, 1
        beq a0, a0, over  ; taken; fall-through is wrong path
        li t2, 0xBBBB
        sw t2, 0(t0)      ; speculative wrong-path store
over:   lw a1, 0(t0)
        halt
    )");
    const auto r = run(img);
    EXPECT_EQ(r.gpr[5], 0xAAAAu) << "wrong-path store must have been undone";
}

TEST(P750, InOrderRetirementMatchesIssConsole) {
    const auto img = isa::assemble(R"(
        li a0, 65
        syscall 1
        li a0, 66
        syscall 1
        li a0, 67
        syscall 1
        syscall 0
    )");
    mem::main_memory m0;
    isa::iss ref(m0);
    ref.load(img);
    ref.run();
    const auto r = run(img);
    EXPECT_EQ(r.console, "ABC");
    EXPECT_EQ(r.console, ref.host().console());
}

TEST(P750, LoadStoreForwardThroughMemoryInOrder) {
    const auto r = run(isa::assemble(R"(
        li t0, 0x8000
        li t1, 77
        sw t1, 0(t0)
        lw t2, 0(t0)     ; LSU executes in program order
        add a0, t2, t2
        halt
    )"));
    EXPECT_EQ(r.gpr[4], 154u);
}

TEST(P750, CompletionQueueBoundsInFlight) {
    // A divide at the head of the completion queue blocks retirement; a
    // long independent stream behind it cannot run further ahead than the
    // CQ depth allows.  With CQ=2 the stream serializes much more.
    p750_config small;
    small.completion_queue = 2;
    p750_config big;
    std::string src = "li a0, 1000\nli a1, 7\ndiv a2, a0, a1\n";
    for (int i = 0; i < 12; ++i) src += "addi t0, zero, " + std::to_string(i) + "\n";
    src += "halt\n";
    const auto img = isa::assemble(src);
    const auto rs = run(img, small);
    const auto rb = run(img, big);
    EXPECT_EQ(rs.gpr[6], rb.gpr[6]);
    EXPECT_GT(rs.stats.cycles, rb.stats.cycles)
        << "a 2-entry completion queue must restrict overlap";
}

TEST(P750, FpOpsUseFpu) {
    const auto r = run(isa::assemble(R"(
        li t0, 3
        li t1, 4
        fcvt.s.w f1, t0
        fcvt.s.w f2, t1
        fmul f3, f1, f2
        fcvt.w.s a0, f3
        halt
    )"));
    EXPECT_EQ(r.gpr[4], 12u);
    EXPECT_GT(r.stats.unit_busy_cycles[static_cast<unsigned>(ppc750::unit::fpu)], 0u);
}

TEST(P750, DeterministicAcrossRuns) {
    const auto img = isa::assemble(R"(
        li a0, 0
        li a1, 50
loop:   addi a0, a0, 3
        blt a0, a1, loop
        halt
    )");
    const auto r1 = run(img);
    const auto r2 = run(img);
    EXPECT_EQ(r1.stats.cycles, r2.stats.cycles);
    EXPECT_EQ(r1.gpr, r2.gpr);
}

}  // namespace
