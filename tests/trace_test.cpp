// Trace/observability: pipeline tracer sampling, transition log through
// the director observer, and image (de)serialization round-trips.
#include <gtest/gtest.h>

#include <cstdio>

#include "isa/assembler.hpp"
#include "isa/image_io.hpp"
#include "mem/main_memory.hpp"
#include "sarm/sarm.hpp"
#include "trace/trace.hpp"

namespace {

using namespace osm;

TEST(PipelineTracer, SamplesEveryCycle) {
    mem::main_memory m;
    sarm::sarm_model model(sarm::sarm_config{}, m);
    trace::pipeline_tracer tracer(model.dir(), model.kernel(), 10000);
    tracer.start();
    model.load(isa::assemble("li a0, 1\nli a1, 2\nadd a2, a0, a1\nhalt\n"));
    model.run(1000);
    EXPECT_EQ(tracer.cycles(), model.stats().cycles);
    const std::string chart = tracer.render();
    EXPECT_NE(chart.find("op0"), std::string::npos);
    // Every pipeline stage letter appears somewhere in the chart.
    for (const char stage : {'F', 'D', 'E', 'B', 'W'}) {
        EXPECT_NE(chart.find(stage), std::string::npos) << stage;
    }
}

TEST(PipelineTracer, StartStopBoundsSamples) {
    mem::main_memory m;
    sarm::sarm_model model(sarm::sarm_config{}, m);
    trace::pipeline_tracer tracer(model.dir(), model.kernel(), 10000);
    model.load(isa::assemble("li a0, 1\nhalt\n"));
    model.run(1000);  // tracer not started
    EXPECT_EQ(tracer.cycles(), 0u);
}

TEST(PipelineTracer, CapacityCap) {
    mem::main_memory m;
    sarm::sarm_model model(sarm::sarm_config{}, m);
    trace::pipeline_tracer tracer(model.dir(), model.kernel(), /*max_cycles=*/8);
    tracer.start();
    model.load(isa::assemble("li a0, 0\nli a1, 100\nloop: addi a0, a0, 1\nblt a0, a1, loop\nhalt\n"));
    model.run(100000);
    EXPECT_EQ(tracer.cycles(), 8u);
}

TEST(TransitionLog, RecordsCommittedTransitions) {
    mem::main_memory m;
    sarm::sarm_model model(sarm::sarm_config{}, m);
    trace::transition_log log(model.dir());
    model.load(isa::assemble("li a0, 1\nli a1, 2\nhalt\n"));
    model.run(10000);
    EXPECT_GT(log.total_transitions(), 0u);
    // Each retired instruction passed W once; 3 instructions retired plus
    // the serialized halt refetches.
    EXPECT_GE(log.count("W", "I"), 3u);
    EXPECT_GE(log.count("I", "F"), 3u);
    EXPECT_EQ(log.count("I", "W"), 0u) << "no such edge exists";
}

TEST(TransitionLog, FilterSelects) {
    mem::main_memory m;
    sarm::sarm_model model(sarm::sarm_config{}, m);
    trace::transition_log log(model.dir(), [](const core::osm&, const core::graph_edge& e) {
        return e.to == 0;  // only edges into state I
    });
    model.load(isa::assemble("li a0, 1\nhalt\n"));
    model.run(10000);
    for (const auto& r : log.records()) EXPECT_EQ(r.to, "I");
    EXPECT_LT(log.records().size(), log.total_transitions());
}

TEST(ImageIo, RoundTripsThroughDisk) {
    const auto img = isa::assemble(R"(
        .data 0x9000
tab:    .word 0xDEADBEEF, 2, 3
        .text
        li a0, 7
        halt
    )");
    const std::string path = ::testing::TempDir() + "/roundtrip.vri";
    isa::save_image(path, img);
    const auto back = isa::load_image(path);
    EXPECT_EQ(back.entry, img.entry);
    ASSERT_EQ(back.segments.size(), img.segments.size());
    for (std::size_t i = 0; i < img.segments.size(); ++i) {
        EXPECT_EQ(back.segments[i].base, img.segments[i].base);
        EXPECT_EQ(back.segments[i].bytes, img.segments[i].bytes);
    }
    std::remove(path.c_str());
}

TEST(ImageIo, RejectsGarbage) {
    const std::string path = ::testing::TempDir() + "/garbage.vri";
    {
        std::FILE* f = std::fopen(path.c_str(), "wb");
        ASSERT_NE(f, nullptr);
        std::fputs("not an image", f);
        std::fclose(f);
    }
    EXPECT_THROW(isa::load_image(path), std::runtime_error);
    EXPECT_THROW(isa::load_image(path + ".missing"), std::runtime_error);
    std::remove(path.c_str());
}

}  // namespace
