// The OSM-DL-described SARM must be cycle-for-cycle identical to the
// hand-built sarm::sarm_model — the retargetable-generation thesis.
#include <gtest/gtest.h>

#include "adl/adl_sarm.hpp"
#include "mem/main_memory.hpp"
#include "sarm/sarm.hpp"
#include "workloads/randprog.hpp"
#include "workloads/workloads.hpp"

namespace {

using namespace osm;

struct pair_result {
    std::uint64_t native_cycles = 0;
    std::uint64_t adl_cycles = 0;
    bool regs_equal = true;
    bool both_halted = false;
};

pair_result run_both(const isa::program_image& img,
                     const sarm::sarm_config& cfg = {}) {
    mem::main_memory m1, m2;
    sarm::sarm_model native(cfg, m1);
    native.load(img);
    native.run(2'000'000'000ull);
    adl::adl_sarm_model from_text(cfg, m2);
    from_text.load(img);
    from_text.run(2'000'000'000ull);

    pair_result r;
    r.native_cycles = native.stats().cycles;
    r.adl_cycles = from_text.stats().cycles;
    r.both_halted = native.halted() && from_text.halted();
    for (unsigned i = 0; i < 32; ++i) {
        if (native.gpr(i) != from_text.gpr(i)) r.regs_equal = false;
        if (native.fpr(i) != from_text.fpr(i)) r.regs_equal = false;
    }
    return r;
}

TEST(AdlSarm, DescriptionMatchesHandBuiltGraph) {
    mem::main_memory m;
    adl::adl_sarm_model model(sarm::sarm_config{}, m);
    mem::main_memory m2;
    sarm::sarm_model native(sarm::sarm_config{}, m2);
    EXPECT_EQ(model.graph().num_states(), native.graph().num_states());
    EXPECT_EQ(model.graph().num_edges(), native.graph().num_edges());
    EXPECT_EQ(model.graph().ident_slots(), native.graph().ident_slots());
}

TEST(AdlSarm, CycleExactOnMediabench) {
    for (auto& w : {workloads::make_gsm_dec(1), workloads::make_g721_enc(1)}) {
        const auto r = run_both(w.image);
        EXPECT_TRUE(r.both_halted) << w.name;
        EXPECT_TRUE(r.regs_equal) << w.name;
        EXPECT_EQ(r.adl_cycles, r.native_cycles) << w.name;
    }
}

TEST(AdlSarm, CycleExactOnRandomPrograms) {
    for (int seed = 0; seed < 8; ++seed) {
        workloads::randprog_options opt;
        opt.seed = 4242u + static_cast<unsigned>(seed);
        opt.with_fp = (seed % 2 == 0);
        const auto img = workloads::make_random_program(opt);
        const auto r = run_both(img);
        EXPECT_TRUE(r.both_halted) << "seed " << opt.seed;
        EXPECT_TRUE(r.regs_equal) << "seed " << opt.seed;
        EXPECT_EQ(r.adl_cycles, r.native_cycles) << "seed " << opt.seed;
    }
}

TEST(AdlSarm, ConfigKnobsStillApply) {
    const auto w = workloads::make_gsm_dec(1);
    sarm::sarm_config no_fwd;
    no_fwd.forwarding = false;
    const auto fwd = run_both(w.image);
    const auto slow = run_both(w.image, no_fwd);
    EXPECT_EQ(slow.adl_cycles, slow.native_cycles);
    EXPECT_GT(slow.adl_cycles, fwd.adl_cycles);
}

}  // namespace
