// Statistics module: histograms, report serialization, and the model
// report integration (stall attribution, queue occupancy).
#include <gtest/gtest.h>

#include "isa/assembler.hpp"
#include "mem/main_memory.hpp"
#include "ppc750/ppc750.hpp"
#include "sarm/sarm.hpp"
#include "stats/stats.hpp"
#include "workloads/workloads.hpp"

namespace {

using namespace osm;

TEST(Histogram, CountsAndClamps) {
    stats::histogram h(4);
    h.add(0);
    h.add(1);
    h.add(1);
    h.add(99);  // clamps into bucket 3
    EXPECT_EQ(h.total(), 4u);
    EXPECT_EQ(h.count(0), 1u);
    EXPECT_EQ(h.count(1), 2u);
    EXPECT_EQ(h.count(3), 1u);
    EXPECT_DOUBLE_EQ(h.mean(), (0 + 1 + 1 + 3) / 4.0);
}

TEST(Histogram, Percentiles) {
    stats::histogram h(10);
    for (int i = 0; i < 90; ++i) h.add(2);
    for (int i = 0; i < 10; ++i) h.add(7);
    EXPECT_EQ(h.percentile(0.5), 2u);
    EXPECT_EQ(h.percentile(0.89), 2u);
    EXPECT_EQ(h.percentile(0.99), 7u);
    EXPECT_EQ(stats::histogram(5).percentile(0.5), 0u);  // empty
}

TEST(Histogram, ClearResets) {
    stats::histogram h(4);
    h.add(3);
    h.clear();
    EXPECT_EQ(h.total(), 0u);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(Report, JsonIsStableAndTyped) {
    stats::report r;
    r.put("b_section", "zeta", 7.5);
    r.put("a_section", "count", std::uint64_t{42});
    r.put("a_section", "name", std::string("x"));
    const std::string json = r.to_json();
    // Sections and keys render sorted, values typed.
    EXPECT_LT(json.find("a_section"), json.find("b_section"));
    EXPECT_NE(json.find("\"count\": 42"), std::string::npos);
    EXPECT_NE(json.find("\"name\": \"x\""), std::string::npos);
    EXPECT_NE(json.find("\"zeta\": 7.5"), std::string::npos);
    EXPECT_EQ(std::get<std::uint64_t>(r.at("a_section", "count")), 42u);
    EXPECT_THROW(r.at("missing", "key"), std::out_of_range);
}

TEST(Report, HistogramExpansion) {
    stats::report r;
    stats::histogram h(4);
    h.add(1);
    h.add(3);
    r.put("q", "occ", h);
    EXPECT_EQ(std::get<std::uint64_t>(r.at("q", "occ.samples")), 2u);
    EXPECT_EQ(std::get<std::uint64_t>(r.at("q", "occ.p99")), 3u);
}

TEST(ModelReports, SarmStallAttribution) {
    mem::main_memory m;
    sarm::sarm_model model(sarm::sarm_config{}, m);
    const auto w = workloads::make_gsm_dec(1);
    model.load(w.image);
    model.run(2'000'000'000ull);
    const auto r = model.make_report();
    EXPECT_EQ(std::get<std::uint64_t>(r.at("run", "cycles")), model.stats().cycles);
    // The multiply-heavy GSM kernel must show execute-hold stalls.
    EXPECT_GT(std::get<std::uint64_t>(r.at("stalls", "exec_hold_cycles")), 1000u);
    // Stall attributions cannot exceed total cycles individually.
    for (const char* k : {"fetch_hold_cycles", "mem_hold_cycles", "exec_hold_cycles"}) {
        EXPECT_LE(std::get<std::uint64_t>(r.at("stalls", k)), model.stats().cycles) << k;
    }
    EXPECT_NE(r.to_json().find("\"ipc\""), std::string::npos);
}

TEST(ModelReports, P750QueueOccupancy) {
    mem::main_memory m;
    ppc750::p750_model model(ppc750::p750_config{}, m);
    const auto w = workloads::make_g721_enc(1);
    model.load(w.image);
    model.run(2'000'000'000ull);
    // Occupancy sampled once per cycle.
    EXPECT_EQ(model.fq_occupancy().total(), model.stats().cycles);
    EXPECT_EQ(model.cq_occupancy().total(), model.stats().cycles);
    // Queues hold at most their capacity (6) — buckets 7 must be empty.
    EXPECT_EQ(model.fq_occupancy().count(7), 0u);
    EXPECT_EQ(model.cq_occupancy().count(7), 0u);
    // The machine actually used its queues.
    EXPECT_GT(model.cq_occupancy().mean(), 0.5);
    const auto r = model.make_report();
    EXPECT_GT(std::get<double>(r.at("queues", "cq_occupancy.mean")), 0.0);
}

TEST(ModelReports, ForwardingAblationVisibleInStalls) {
    const auto w = workloads::make_gsm_dec(1);
    std::uint64_t cycles[2];
    for (int fwd = 0; fwd < 2; ++fwd) {
        mem::main_memory m;
        sarm::sarm_config cfg;
        cfg.forwarding = fwd != 0;
        sarm::sarm_model model(cfg, m);
        model.load(w.image);
        model.run(2'000'000'000ull);
        cycles[fwd] = model.stats().cycles;
    }
    EXPECT_LT(cycles[1], cycles[0]);
}

}  // namespace
