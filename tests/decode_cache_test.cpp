// Decoded-instruction cache: direct-mapped indexing, (pc, word) tagging,
// hit/miss/evict/SMC counters, pre-decoded classification flags, the
// decode<->encode round-trip property over random programs, and an
// ISS-level self-modifying-code program proving the word tag forces
// re-decode without any explicit invalidation.
#include <gtest/gtest.h>

#include <vector>

#include "isa/decode_cache.hpp"
#include "isa/encoding.hpp"
#include "isa/iss.hpp"
#include "isa/program.hpp"
#include "mem/main_memory.hpp"
#include "workloads/randprog.hpp"

namespace {

using namespace osm;
using isa::decode_cache;
using isa::decoded_inst;
using isa::op;
using isa::predecoded_inst;

TEST(DecodeCache, RoundsEntriesUpToPowerOfTwo) {
    EXPECT_EQ(decode_cache(1).entries(), 1u);
    EXPECT_EQ(decode_cache(4).entries(), 4u);
    EXPECT_EQ(decode_cache(5).entries(), 8u);
    EXPECT_EQ(decode_cache(4095).entries(), 4096u);
    EXPECT_EQ(decode_cache().entries(), decode_cache::k_default_entries);
}

TEST(DecodeCache, HitMissEvictCounters) {
    decode_cache dc(4);
    const std::uint32_t w = isa::encode(decoded_inst{op::addi, 5, 0, 0, 7, 0});

    EXPECT_EQ(dc.lookup(0x1000, w).di.code, op::addi);  // cold miss
    EXPECT_EQ(dc.stats().misses, 1u);
    EXPECT_EQ(dc.stats().hits, 0u);

    EXPECT_EQ(dc.lookup(0x1000, w).di.imm, 7);  // hit
    EXPECT_EQ(dc.stats().hits, 1u);

    // 4 entries => pcs 16 bytes apart share a line: 0x1010 evicts 0x1000.
    dc.lookup(0x1010, w);
    EXPECT_EQ(dc.stats().misses, 2u);
    EXPECT_EQ(dc.stats().evictions, 1u);
    dc.lookup(0x1000, w);  // conflict miss again
    EXPECT_EQ(dc.stats().misses, 3u);
    EXPECT_EQ(dc.stats().evictions, 2u);
    EXPECT_EQ(dc.stats().smc_redecodes, 0u);

    dc.invalidate_all();
    dc.lookup(0x1000, w);
    EXPECT_EQ(dc.stats().misses, 4u);
    EXPECT_EQ(dc.stats().evictions, 2u);  // invalid line: not an eviction

    dc.reset_stats();
    EXPECT_EQ(dc.stats().hits, 0u);
    EXPECT_EQ(dc.stats().misses, 0u);
}

// The self-modifying-code guarantee at the unit level: a changed word at an
// unchanged pc is a tag mismatch, so the stale decode can never be served.
TEST(DecodeCache, WordTagForcesRedecode) {
    decode_cache dc(16);
    const std::uint32_t w1 = isa::encode(decoded_inst{op::addi, 5, 0, 0, 1, 0});
    const std::uint32_t w2 = isa::encode(decoded_inst{op::addi, 5, 0, 0, 42, 0});

    EXPECT_EQ(dc.lookup(0x2000, w1).di.imm, 1);
    EXPECT_EQ(dc.lookup(0x2000, w1).di.imm, 1);
    EXPECT_EQ(dc.stats().hits, 1u);

    const predecoded_inst& pd = dc.lookup(0x2000, w2);  // rewritten word
    EXPECT_EQ(pd.di.imm, 42);
    EXPECT_EQ(pd.di, isa::decode(w2));
    EXPECT_EQ(dc.stats().smc_redecodes, 1u);
    EXPECT_EQ(dc.stats().evictions, 0u);

    EXPECT_EQ(dc.lookup(0x2000, w2).di.imm, 42);  // new word now cached
    EXPECT_EQ(dc.stats().hits, 2u);
}

// Pre-decoded classification flags must agree with the predicate functions
// for every word a random program can contain.
TEST(DecodeCache, PredecodedFlagsMatchPredicates) {
    workloads::randprog_options opt;
    opt.seed = 77;
    opt.with_fp = true;
    const auto img = workloads::make_random_program(opt);
    unsigned checked = 0;
    for (const auto& seg : img.segments) {
        if (img.entry < seg.base || img.entry >= seg.base + seg.bytes.size())
            continue;  // text segment only
        for (std::size_t i = 0; i + 4 <= seg.bytes.size(); i += 4) {
            const std::uint32_t w = static_cast<std::uint32_t>(seg.bytes[i]) |
                                    (static_cast<std::uint32_t>(seg.bytes[i + 1]) << 8) |
                                    (static_cast<std::uint32_t>(seg.bytes[i + 2]) << 16) |
                                    (static_cast<std::uint32_t>(seg.bytes[i + 3]) << 24);
            const predecoded_inst pd = predecoded_inst::make(w);
            const op c = pd.di.code;
            EXPECT_EQ(pd.load(), isa::is_load(c));
            EXPECT_EQ(pd.store(), isa::is_store(c));
            EXPECT_EQ(pd.mem(), isa::is_mem(c));
            EXPECT_EQ(pd.branch(), isa::is_branch(c));
            EXPECT_EQ(pd.jump(), isa::is_jump(c));
            EXPECT_EQ(pd.writes_rd(), isa::writes_rd(c));
            EXPECT_EQ(pd.rd_fpr(), isa::rd_is_fpr(c));
            EXPECT_EQ(pd.uses_rs1(), isa::uses_rs1(c));
            EXPECT_EQ(pd.rs1_fpr(), isa::rs1_is_fpr(c));
            EXPECT_EQ(pd.uses_rs2(), isa::uses_rs2(c));
            EXPECT_EQ(pd.rs2_fpr(), isa::rs2_is_fpr(c));
            EXPECT_EQ(pd.mul_div(), isa::is_mul_div(c));
            EXPECT_EQ(pd.system(), isa::is_system(c));
            EXPECT_EQ(static_cast<unsigned>(pd.extra_cycles), isa::extra_exec_cycles(c));
            ++checked;
        }
    }
    EXPECT_GT(checked, 50u);
}

// Property: decode is a left inverse of encode (and encode of decode, on
// valid words) across everything the random program generator emits.
TEST(DecodeCache, DecodeEncodeRoundTripProperty) {
    for (std::uint64_t seed : {1ull, 2ull, 3ull, 101ull, 202ull, 303ull}) {
        workloads::randprog_options opt;
        opt.seed = seed;
        opt.with_fp = (seed % 2 == 1);
        const auto img = workloads::make_random_program(opt);
        unsigned checked = 0;
        for (const auto& seg : img.segments) {
            if (img.entry < seg.base || img.entry >= seg.base + seg.bytes.size())
                continue;
            for (std::size_t i = 0; i + 4 <= seg.bytes.size(); i += 4) {
                const std::uint32_t w =
                    static_cast<std::uint32_t>(seg.bytes[i]) |
                    (static_cast<std::uint32_t>(seg.bytes[i + 1]) << 8) |
                    (static_cast<std::uint32_t>(seg.bytes[i + 2]) << 16) |
                    (static_cast<std::uint32_t>(seg.bytes[i + 3]) << 24);
                const decoded_inst di = isa::decode(w);
                ASSERT_NE(di.code, op::invalid) << "seed " << seed << " word " << i / 4;
                EXPECT_EQ(isa::encode(di), w) << "seed " << seed;
                decoded_inst again = isa::decode(isa::encode(di));
                EXPECT_EQ(again, di) << "seed " << seed;
                ++checked;
            }
        }
        EXPECT_GT(checked, 50u) << "seed " << seed;
    }
}

// End-to-end self-modifying code on the ISS: a loop body instruction is
// overwritten by a store between the first and second trip.  Because every
// lookup re-reads the word and compares it to the tag, the cached stale
// decode is unreachable; cache-on and cache-off runs must agree exactly.
TEST(DecodeCache, SelfModifyingCodeRedecodes) {
    isa::program_builder b;
    b.li(9, 2);  // trip count
    const auto loop = b.here();
    const std::uint32_t target = b.emit_i(op::addi, 5, 0, 1);  // the patchee
    b.emit_r(op::add_r, 8, 8, 5);                              // x8 += x5
    b.emit_i(op::addi, 10, 10, 1);                             // ++counter
    // Patch the target in place: after this store the next trip must see
    // "addi x5, x0, 42".
    const std::uint32_t new_word = isa::encode(decoded_inst{op::addi, 5, 0, 0, 42, 0});
    b.li(6, target);
    b.li(7, new_word);
    b.emit_store(op::sw, 7, 6, 0);
    b.emit_branch(op::blt, 10, 9, loop);
    b.halt_op();
    const auto img = b.finish();

    {
        mem::main_memory m;
        isa::iss sim(m, true);
        sim.load(img);
        sim.run(10'000);
        EXPECT_TRUE(sim.state().halted);
        EXPECT_EQ(sim.state().gpr[5], 42u);       // second trip ran the new word
        EXPECT_EQ(sim.state().gpr[8], 1u + 42u);  // old word ran exactly once
        EXPECT_GE(sim.decode_stats().smc_redecodes, 1u);

        mem::main_memory m2;
        isa::iss off(m2, false);
        off.load(img);
        off.run(10'000);
        EXPECT_EQ(sim.state().gpr, off.state().gpr);
        EXPECT_EQ(sim.state().fpr, off.state().fpr);
        EXPECT_EQ(sim.instret(), off.instret());
    }
}

}  // namespace
