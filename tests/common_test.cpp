// Common support: bit utilities, ring buffer, deterministic PRNG.
#include <gtest/gtest.h>

#include "common/bits.hpp"
#include "common/ring_buffer.hpp"
#include "common/xrandom.hpp"

namespace {

using namespace osm;

TEST(Bits, ExtractInsertRoundTrip) {
    const std::uint32_t v = 0xDEADBEEF;
    for (unsigned lo = 0; lo < 28; ++lo) {
        for (unsigned len = 1; len + lo <= 32; len += 5) {
            const std::uint32_t field = bits(v, lo, len);
            const std::uint32_t w = insert_bits(0, field, lo, len);
            EXPECT_EQ(bits(w, lo, len), field);
        }
    }
}

TEST(Bits, SignExtend) {
    EXPECT_EQ(sign_extend(0x8000, 16), -32768);
    EXPECT_EQ(sign_extend(0x7FFF, 16), 32767);
    EXPECT_EQ(sign_extend(0x1F, 5), -1);
    EXPECT_EQ(sign_extend(0x0F, 5), 15);
    EXPECT_EQ(sign_extend(0xFFFFFFFF, 32), -1);
}

TEST(Bits, Pow2Helpers) {
    EXPECT_TRUE(is_pow2(1));
    EXPECT_TRUE(is_pow2(1ull << 40));
    EXPECT_FALSE(is_pow2(0));
    EXPECT_FALSE(is_pow2(12));
    EXPECT_EQ(log2_exact(1), 0u);
    EXPECT_EQ(log2_exact(4096), 12u);
    EXPECT_EQ(align_up(0, 8), 0u);
    EXPECT_EQ(align_up(1, 8), 8u);
    EXPECT_EQ(align_up(16, 8), 16u);
}

TEST(RingBuffer, FifoOrder) {
    ring_buffer<int> rb(4);
    EXPECT_TRUE(rb.empty());
    for (int i = 0; i < 4; ++i) rb.push_back(i);
    EXPECT_TRUE(rb.full());
    EXPECT_EQ(rb.front(), 0);
    EXPECT_EQ(rb.back(), 3);
    EXPECT_EQ(rb.pop_front(), 0);
    rb.push_back(4);
    for (int want = 1; want <= 4; ++want) EXPECT_EQ(rb.pop_front(), want);
    EXPECT_TRUE(rb.empty());
}

TEST(RingBuffer, WrapsManyTimes) {
    ring_buffer<int> rb(3);
    int next_in = 0;
    int next_out = 0;
    for (int round = 0; round < 100; ++round) {
        while (!rb.full()) rb.push_back(next_in++);
        while (!rb.empty()) EXPECT_EQ(rb.pop_front(), next_out++);
    }
    EXPECT_EQ(next_in, next_out);
}

TEST(RingBuffer, IndexedAccess) {
    ring_buffer<int> rb(4);
    rb.push_back(10);
    rb.push_back(11);
    rb.pop_front();
    rb.push_back(12);
    rb.push_back(13);
    EXPECT_EQ(rb.at(0), 11);
    EXPECT_EQ(rb.at(1), 12);
    EXPECT_EQ(rb.at(2), 13);
}

TEST(XRandom, DeterministicPerSeed) {
    xrandom a(42);
    xrandom b(42);
    xrandom c(43);
    bool all_same_as_c = true;
    for (int i = 0; i < 100; ++i) {
        const auto va = a.next_u64();
        EXPECT_EQ(va, b.next_u64());
        if (va != c.next_u64()) all_same_as_c = false;
    }
    EXPECT_FALSE(all_same_as_c);
}

TEST(XRandom, BoundsRespected) {
    xrandom rng(7);
    for (int i = 0; i < 1000; ++i) {
        EXPECT_LT(rng.next_below(17), 17u);
        const auto v = rng.next_range(-5, 5);
        EXPECT_GE(v, -5);
        EXPECT_LE(v, 5);
        const double d = rng.next_double();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(XRandom, ChanceRoughlyUniform) {
    xrandom rng(99);
    int hits = 0;
    for (int i = 0; i < 10000; ++i) {
        if (rng.chance(1, 4)) ++hits;
    }
    EXPECT_GT(hits, 2200);
    EXPECT_LT(hits, 2800);
}

}  // namespace
