// Common support: bit utilities, ring buffer, deterministic PRNG.
#include <gtest/gtest.h>

#include "common/bits.hpp"
#include "common/ring_buffer.hpp"
#include "common/xrandom.hpp"

namespace {

using namespace osm;

TEST(Bits, ExtractInsertRoundTrip) {
    const std::uint32_t v = 0xDEADBEEF;
    for (unsigned lo = 0; lo < 28; ++lo) {
        for (unsigned len = 1; len + lo <= 32; len += 5) {
            const std::uint32_t field = bits(v, lo, len);
            const std::uint32_t w = insert_bits(0, field, lo, len);
            EXPECT_EQ(bits(w, lo, len), field);
        }
    }
}

TEST(Bits, SignExtend) {
    EXPECT_EQ(sign_extend(0x8000, 16), -32768);
    EXPECT_EQ(sign_extend(0x7FFF, 16), 32767);
    EXPECT_EQ(sign_extend(0x1F, 5), -1);
    EXPECT_EQ(sign_extend(0x0F, 5), 15);
    EXPECT_EQ(sign_extend(0xFFFFFFFF, 32), -1);
}

// Edge cases that used to be undefined behaviour: sign_extend(v, 0) shifted
// by (0 - 1), and bits(v, lo, len) with len >= 32 - lo built its mask with
// an overlong shift.  The guarded versions have total, documented contracts.
TEST(Bits, SignExtendEdgeWidths) {
    EXPECT_EQ(sign_extend(0xFFFFFFFF, 0), 0);  // zero-width field is empty
    EXPECT_EQ(sign_extend(0x12345678, 0), 0);
    EXPECT_EQ(sign_extend(0x80000000, 32), INT32_MIN);  // full-width identity
    EXPECT_EQ(sign_extend(0x80000000, 33), INT32_MIN);  // clamped, not UB
    EXPECT_EQ(sign_extend(1, 1), -1);
    EXPECT_EQ(sign_extend(0, 1), 0);
    // constexpr evaluation rejects UB, so this doubles as a static check.
    static_assert(sign_extend(0xFFFFFFFF, 0) == 0);
    static_assert(sign_extend(0xDEADBEEF, 32) == static_cast<std::int32_t>(0xDEADBEEF));
}

TEST(Bits, ExtractEdgeWidths) {
    EXPECT_EQ(bits(0xDEADBEEF, 0, 32), 0xDEADBEEFu);  // full word
    EXPECT_EQ(bits(0xDEADBEEF, 4, 28), 0x0DEADBEEu);  // len == 32 - lo
    EXPECT_EQ(bits(0xDEADBEEF, 4, 32), 0x0DEADBEEu);  // overlong len clamps
    EXPECT_EQ(bits(0xDEADBEEF, 4, 0), 0u);            // empty field
    EXPECT_EQ(bits(0xDEADBEEF, 32, 4), 0u);           // lo past the word
    EXPECT_EQ(bit(0xDEADBEEF, 32), 0u);
    EXPECT_EQ(bit(0x80000000, 31), 1u);
    static_assert(bits(0xFFFFFFFF, 1, 31) == 0x7FFFFFFFu);
    static_assert(bits(0xFFFFFFFF, 1, 40) == 0x7FFFFFFFu);
}

TEST(Bits, InsertEdgeWidths) {
    EXPECT_EQ(insert_bits(0, 0xDEADBEEF, 0, 32), 0xDEADBEEFu);
    EXPECT_EQ(insert_bits(0xFFFFFFFF, 0, 4, 28), 0x0000000Fu);
    EXPECT_EQ(insert_bits(0xFFFFFFFF, 0, 4, 99), 0x0000000Fu);  // clamps
    EXPECT_EQ(insert_bits(0x12345678, 0xF, 0, 0), 0x12345678u);  // no-op
    EXPECT_EQ(insert_bits(0x12345678, 0xF, 32, 4), 0x12345678u);
}

TEST(Bits, Pow2Helpers) {
    EXPECT_TRUE(is_pow2(1));
    EXPECT_TRUE(is_pow2(1ull << 40));
    EXPECT_FALSE(is_pow2(0));
    EXPECT_FALSE(is_pow2(12));
    EXPECT_EQ(log2_exact(1), 0u);
    EXPECT_EQ(log2_exact(4096), 12u);
    EXPECT_EQ(align_up(0, 8), 0u);
    EXPECT_EQ(align_up(1, 8), 8u);
    EXPECT_EQ(align_up(16, 8), 16u);
}

TEST(RingBuffer, FifoOrder) {
    ring_buffer<int> rb(4);
    EXPECT_TRUE(rb.empty());
    for (int i = 0; i < 4; ++i) rb.push_back(i);
    EXPECT_TRUE(rb.full());
    EXPECT_EQ(rb.front(), 0);
    EXPECT_EQ(rb.back(), 3);
    EXPECT_EQ(rb.pop_front(), 0);
    rb.push_back(4);
    for (int want = 1; want <= 4; ++want) EXPECT_EQ(rb.pop_front(), want);
    EXPECT_TRUE(rb.empty());
}

TEST(RingBuffer, WrapsManyTimes) {
    ring_buffer<int> rb(3);
    int next_in = 0;
    int next_out = 0;
    for (int round = 0; round < 100; ++round) {
        while (!rb.full()) rb.push_back(next_in++);
        while (!rb.empty()) EXPECT_EQ(rb.pop_front(), next_out++);
    }
    EXPECT_EQ(next_in, next_out);
}

TEST(RingBuffer, IndexedAccess) {
    ring_buffer<int> rb(4);
    rb.push_back(10);
    rb.push_back(11);
    rb.pop_front();
    rb.push_back(12);
    rb.push_back(13);
    EXPECT_EQ(rb.at(0), 11);
    EXPECT_EQ(rb.at(1), 12);
    EXPECT_EQ(rb.at(2), 13);
}

TEST(XRandom, DeterministicPerSeed) {
    xrandom a(42);
    xrandom b(42);
    xrandom c(43);
    bool all_same_as_c = true;
    for (int i = 0; i < 100; ++i) {
        const auto va = a.next_u64();
        EXPECT_EQ(va, b.next_u64());
        if (va != c.next_u64()) all_same_as_c = false;
    }
    EXPECT_FALSE(all_same_as_c);
}

TEST(XRandom, BoundsRespected) {
    xrandom rng(7);
    for (int i = 0; i < 1000; ++i) {
        EXPECT_LT(rng.next_below(17), 17u);
        const auto v = rng.next_range(-5, 5);
        EXPECT_GE(v, -5);
        EXPECT_LE(v, 5);
        const double d = rng.next_double();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(XRandom, ChanceRoughlyUniform) {
    xrandom rng(99);
    int hits = 0;
    for (int i = 0; i < 10000; ++i) {
        if (rng.chance(1, 4)) ++hits;
    }
    EXPECT_GT(hits, 2200);
    EXPECT_LT(hits, 2800);
}

}  // namespace
