// The OSM core: graph construction, token managers, two-phase condition
// semantics, and the director's scheduling rules (paper §3, Fig. 3).
#include <gtest/gtest.h>

#include "core/director.hpp"
#include "core/osm.hpp"
#include "core/osm_graph.hpp"
#include "core/sim_kernel.hpp"
#include "core/token_manager.hpp"

namespace {

using namespace osm::core;
using osm_t = osm::core::osm;

const auto fix0 = ident_expr::value(0);

TEST(UnitTokenManager, ExclusiveOwnership) {
    osm_graph g("t");
    g.add_state("I");
    g.finalize();
    osm_t a(g, "a");
    osm_t b(g, "b");

    unit_token_manager m("m");
    EXPECT_TRUE(m.can_allocate(0, a));
    m.do_allocate(0, a);
    EXPECT_TRUE(m.busy());
    EXPECT_EQ(m.owner(), &a);
    EXPECT_FALSE(m.can_allocate(0, b));
    EXPECT_TRUE(m.inquire(0, a));   // owner may inquire
    EXPECT_FALSE(m.inquire(0, b));  // others may not
    EXPECT_TRUE(m.can_release(0, a));
    EXPECT_FALSE(m.can_release(0, b));
    m.do_release(0, a);
    EXPECT_FALSE(m.busy());
}

TEST(UnitTokenManager, HoldRefusesRelease) {
    osm_graph g("t");
    g.add_state("I");
    g.finalize();
    osm_t a(g, "a");
    unit_token_manager m("m");
    m.do_allocate(0, a);
    m.hold_for(2);
    EXPECT_FALSE(m.can_release(0, a));
    m.tick();
    EXPECT_FALSE(m.can_release(0, a));
    m.tick();
    EXPECT_TRUE(m.can_release(0, a));
}

TEST(UnitTokenManager, DiscardClearsHold) {
    osm_graph g("t");
    g.add_state("I");
    g.finalize();
    osm_t a(g, "a");
    unit_token_manager m("m");
    m.do_allocate(0, a);
    m.hold_for(5);
    m.discard(0, a);
    EXPECT_FALSE(m.busy());
    EXPECT_EQ(m.hold_remaining(), 0u);
}

TEST(PoolTokenManager, CountsCapacity) {
    osm_graph g("t");
    g.add_state("I");
    g.finalize();
    osm_t a(g, "a");
    osm_t b(g, "b");
    pool_token_manager m("m", 2);
    EXPECT_TRUE(m.can_allocate(0, a));
    m.do_allocate(0, a);
    m.do_allocate(1, b);
    EXPECT_EQ(m.free_slots(), 0u);
    EXPECT_FALSE(m.can_allocate(2, a));
    m.do_release(0, a);
    EXPECT_EQ(m.free_slots(), 1u);
}

// Build the canonical two-state machine: I --allocate(m)--> H.
struct tiny_model {
    unit_token_manager m{"m"};
    osm_graph g{"tiny"};
    state_id I, H;
    std::int32_t e_acquire;

    tiny_model() {
        I = g.add_state("I");
        H = g.add_state("H");
        e_acquire = g.add_edge(I, H);
        g.edge_allocate(e_acquire, m, fix0);
        g.finalize();
    }
};

TEST(Director, GrantsByRankSeniorsFirst) {
    tiny_model t;
    osm_t a(t.g, "a");
    osm_t b(t.g, "b");
    director d;
    // Register b first but rank a higher.
    d.add(b);
    d.add(a);
    d.set_rank([&](const osm_t& m) { return &m == &a ? 0 : 1; });
    EXPECT_EQ(d.control_step(), 1u);
    EXPECT_FALSE(a.at_initial());
    EXPECT_TRUE(b.at_initial());
    EXPECT_TRUE(a.holds(&t.m, 0));
}

TEST(Director, OneTransitionPerOsmPerStep) {
    osm_graph g("chain");
    const auto I = g.add_state("I");
    const auto A = g.add_state("A");
    const auto B = g.add_state("B");
    g.add_edge(I, A);
    g.add_edge(A, B);
    g.finalize();
    osm_t m(g, "m");
    director d;
    d.add(m);
    d.control_step();
    EXPECT_EQ(m.state(), A);  // not B: one transition per control step
    d.control_step();
    EXPECT_EQ(m.state(), B);
    EXPECT_EQ(m.transitions(), 2u);
}

TEST(Director, HigherPriorityEdgePreferred) {
    unit_token_manager fast("fast");
    osm_graph g("prio");
    const auto I = g.add_state("I");
    const auto X = g.add_state("X");
    const auto Y = g.add_state("Y");
    const auto ex = g.add_edge(I, X, /*priority=*/5);
    g.edge_allocate(ex, fast, fix0);
    g.add_edge(I, Y, /*priority=*/1);  // always satisfiable
    g.finalize();

    osm_t a(g, "a");
    osm_t b(g, "b");
    director d;
    d.add(a);
    d.add(b);
    d.control_step();
    // a (registered first among equals) wins the fast path; b falls through
    // to the lower-priority edge.
    EXPECT_EQ(a.state(), X);
    EXPECT_EQ(b.state(), Y);
}

TEST(Director, ConditionIsAllOrNothing) {
    unit_token_manager ma("ma");
    unit_token_manager mb("mb");
    osm_graph g("atomic");
    const auto I = g.add_state("I");
    const auto H = g.add_state("H");
    const auto e = g.add_edge(I, H);
    g.edge_allocate(e, ma, fix0);
    g.edge_allocate(e, mb, fix0);
    g.finalize();

    osm_t blocker_graph_dummy(g, "dummy");  // occupies nothing
    osm_t a(g, "a");
    // Make mb unavailable.
    mb.do_allocate(0, blocker_graph_dummy);

    director d;
    d.add(a);
    EXPECT_EQ(d.control_step(), 0u);
    // The failed condition must not have committed the ma allocate.
    EXPECT_FALSE(ma.busy());
    EXPECT_TRUE(a.token_buffer().empty());
}

TEST(Director, NullIdentSkipsTransaction) {
    unit_token_manager m("m");
    osm_graph g("nulls");
    g.set_ident_slots(1);
    const auto I = g.add_state("I");
    const auto H = g.add_state("H");
    const auto e = g.add_edge(I, H);
    g.edge_allocate(e, m, ident_expr::from_slot(0));
    g.finalize();

    osm_t a(g, "a");
    a.set_ident(0, k_null_ident);
    director d;
    d.add(a);
    EXPECT_EQ(d.control_step(), 1u);
    EXPECT_FALSE(m.busy());  // transaction was disabled
    EXPECT_TRUE(a.token_buffer().empty());
}

// Junior releases a token the senior wants: with Fig. 3 restart the senior
// proceeds in the same control step; without restart it waits a step.
struct handoff {
    unit_token_manager m{"m"};
    osm_graph acquire{"acquire"};
    osm_graph release{"release"};
    state_id aI, aH, rI, rH;

    handoff() {
        aI = acquire.add_state("I");
        aH = acquire.add_state("H");
        const auto e1 = acquire.add_edge(aI, aH);
        acquire.edge_allocate(e1, m, fix0);
        acquire.finalize();

        rI = release.add_state("I");
        rH = release.add_state("H");
        const auto e2 = release.add_edge(rI, rH);
        release.edge_allocate(e2, m, fix0);
        const auto e3 = release.add_edge(rH, rI);
        release.edge_release(e3, m, fix0);
        release.finalize();
    }
};

TEST(Director, RestartLetsSeniorUseFreedToken) {
    handoff h;
    osm_t junior(h.release, "junior");
    osm_t senior(h.acquire, "senior");
    director d;
    d.add(junior);
    d.add(senior);
    d.set_rank([&](const osm_t& m) { return &m == &senior ? 0 : 1; });
    d.cfg().restart_on_transition = true;

    // Step 1: senior is offered the token first and takes it?  No — make
    // junior grab it first by blocking senior's graph: simplest is to let
    // junior acquire in step 1 while senior is already past.  Arrange:
    // junior takes the token in step 1 (senior's allocate fails only if
    // junior is ranked higher that step).  Flip ranks for the first step.
    d.set_rank([&](const osm_t& m) { return &m == &junior ? 0 : 1; });
    d.control_step();  // junior allocates; senior blocked
    EXPECT_FALSE(senior.holds(&h.m, 0));
    EXPECT_TRUE(junior.holds(&h.m, 0));

    // Now senior outranks junior; junior's release frees the token and the
    // restart gives it to the senior within the same control step.
    d.set_rank([&](const osm_t& m) { return &m == &senior ? 0 : 1; });
    const unsigned transitions = d.control_step();
    EXPECT_EQ(transitions, 2u);
    EXPECT_TRUE(senior.holds(&h.m, 0));
    EXPECT_GE(d.stats().outer_restarts, 1u);
}

TEST(Director, NoRestartDefersSeniorOneStep) {
    handoff h;
    osm_t junior(h.release, "junior");
    osm_t senior(h.acquire, "senior");
    director d;
    d.add(junior);
    d.add(senior);
    d.cfg().restart_on_transition = false;

    d.set_rank([&](const osm_t& m) { return &m == &junior ? 0 : 1; });
    d.control_step();  // junior allocates
    d.set_rank([&](const osm_t& m) { return &m == &senior ? 0 : 1; });
    EXPECT_EQ(d.control_step(), 1u);  // only junior's release fires
    EXPECT_FALSE(senior.holds(&h.m, 0));
    EXPECT_EQ(d.control_step(), 1u);  // senior acquires one step later
    EXPECT_TRUE(senior.holds(&h.m, 0));
}

TEST(Director, DetectsCyclicTokenDeadlock) {
    unit_token_manager ma("ma");
    unit_token_manager mb("mb");

    const auto make_graph = [](unit_token_manager& first,
                               unit_token_manager& second) {
        auto g = std::make_unique<osm_graph>("g");
        const auto I = g->add_state("I");
        const auto H = g->add_state("H");
        const auto X = g->add_state("X");
        const auto e1 = g->add_edge(I, H);
        g->edge_allocate(e1, first, fix0);
        const auto e2 = g->add_edge(H, X);
        g->edge_allocate(e2, second, fix0);
        g->finalize();
        return g;
    };
    const auto g1 = make_graph(ma, mb);
    const auto g2 = make_graph(mb, ma);

    osm_t a(*g1, "a");
    osm_t b(*g2, "b");
    director d;
    d.add(a);
    d.add(b);
    d.cfg().deadlock_check = true;
    EXPECT_EQ(d.control_step(), 2u);  // both grab their first token
    EXPECT_THROW(d.control_step(), deadlock_error);
}

TEST(Director, StallWithoutCycleIsNotDeadlock) {
    tiny_model t;
    osm_t a(t.g, "a");
    osm_t b(t.g, "b");
    director d;
    d.add(a);
    d.add(b);
    d.cfg().deadlock_check = true;
    d.control_step();  // a acquires
    // b stalls on a's token, but a is not waiting on anything: no cycle.
    EXPECT_NO_THROW(d.control_step());
}

TEST(Osm, HardResetDiscardsTokens) {
    tiny_model t;
    osm_t a(t.g, "a");
    director d;
    d.add(a);
    d.control_step();
    EXPECT_TRUE(t.m.busy());
    a.hard_reset();
    EXPECT_FALSE(t.m.busy());
    EXPECT_TRUE(a.at_initial());
    EXPECT_TRUE(a.token_buffer().empty());
}

TEST(SimKernel, CycleHooksRunBeforeControlSteps) {
    tiny_model t;
    osm_t a(t.g, "a");
    director d;
    d.add(a);
    sim_kernel k(d);
    int hooks = 0;
    k.on_cycle([&] { ++hooks; });
    EXPECT_EQ(k.run(5), 5u);
    EXPECT_EQ(hooks, 5);
    EXPECT_EQ(d.stats().control_steps, 5u);
    EXPECT_EQ(k.cycles(), 5u);
}

TEST(SimKernel, StopRequestHonored) {
    tiny_model t;
    osm_t a(t.g, "a");
    director d;
    d.add(a);
    sim_kernel k(d);
    k.on_cycle([&] {
        if (k.cycles() == 2) k.request_stop();
    });
    EXPECT_EQ(k.run(100), 3u);  // cycles 0,1,2 then stop
}

TEST(Director, DiscardPrimitiveDropsSingleToken) {
    // An OSM holding two tokens discards only the named one.
    unit_token_manager ma("ma");
    unit_token_manager mb("mb");
    osm_graph g("discard1");
    const auto I = g.add_state("I");
    const auto H = g.add_state("H");
    const auto X = g.add_state("X");
    auto e = g.add_edge(I, H);
    g.edge_allocate(e, ma, fix0);
    g.edge_allocate(e, mb, fix0);
    e = g.add_edge(H, X);
    g.edge_discard(e, ma, fix0);  // drop ma's token, keep mb's
    g.finalize();

    osm_t a(g, "a");
    director d;
    d.add(a);
    d.control_step();
    EXPECT_TRUE(ma.busy());
    EXPECT_TRUE(mb.busy());
    d.control_step();
    EXPECT_FALSE(ma.busy()) << "discarded";
    EXPECT_TRUE(mb.busy()) << "retained";
    EXPECT_EQ(a.token_buffer().size(), 1u);
    EXPECT_TRUE(a.holds(&mb, 0));
}

TEST(Director, EdgeEnableMaskRoutesPerInstance) {
    // One graph, two alternative paths; per-instance enables pick one —
    // the mechanism the P750 model uses to route operations to units.
    unit_token_manager mx("mx");
    unit_token_manager my("my");
    osm_graph g("mask");
    const auto I = g.add_state("I");
    const auto X = g.add_state("X");
    const auto Y = g.add_state("Y");
    const auto ex = g.add_edge(I, X, /*priority=*/5);
    g.edge_allocate(ex, mx, fix0);
    const auto ey = g.add_edge(I, Y, /*priority=*/5);
    g.edge_allocate(ey, my, fix0);
    g.finalize();

    osm_t a(g, "a");
    osm_t b(g, "b");
    a.set_edge_enabled(ex, false);  // a may only take the Y path
    b.set_edge_enabled(ey, false);  // b may only take the X path
    director d;
    d.add(a);
    d.add(b);
    d.control_step();
    EXPECT_EQ(a.state(), Y);
    EXPECT_EQ(b.state(), X);
    a.enable_all_edges();
    EXPECT_TRUE(a.edge_enabled(ex));
}

TEST(Director, TransitionObserverSeesCommits) {
    tiny_model t;
    osm_t a(t.g, "a");
    director d;
    d.add(a);
    int observed = 0;
    d.set_observer([&](const osm_t& m, const graph_edge& e) {
        ++observed;
        EXPECT_EQ(&m, &a);
        EXPECT_EQ(e.to, t.H);
    });
    d.control_step();
    EXPECT_EQ(observed, 1);
    d.set_observer(nullptr);
    a.hard_reset();
    d.control_step();
    EXPECT_EQ(observed, 1) << "cleared observer must not fire";
}

TEST(SimKernel, PhasePeriodInterleavesHardwareEvents) {
    // With a 2-tick control period, DE events scheduled at odd ticks run
    // between control steps (the paper's per-phase stepping option).
    tiny_model t;
    osm_t a(t.g, "a");
    director d;
    d.add(a);
    sim_kernel k(d, /*period=*/2);
    std::vector<int> order;
    k.on_cycle([&] { order.push_back(0); });
    k.dek().schedule_at(1, [&] { order.push_back(1); });
    k.dek().schedule_at(3, [&] { order.push_back(3); });
    k.run(3);
    // Hook at cycle 0, event@1 before cycle 1's hook, event@3 before cycle 2's.
    EXPECT_EQ(order, (std::vector<int>{0, 1, 0, 3, 0}));
}

TEST(Director, PoolManagerThroughDirector) {
    pool_token_manager pool("pool", 2);
    osm_graph g("pool");
    const auto I = g.add_state("I");
    const auto H = g.add_state("H");
    auto e = g.add_edge(I, H);
    g.edge_allocate(e, pool, fix0);
    e = g.add_edge(H, I);
    g.edge_release(e, pool, fix0);
    g.finalize();

    osm_t a(g, "a");
    osm_t b(g, "b");
    osm_t c(g, "c");
    director d;
    d.add(a);
    d.add(b);
    d.add(c);
    d.control_step();
    // Two slots: exactly two of the three acquired.
    const int held = (a.at_initial() ? 0 : 1) + (b.at_initial() ? 0 : 1) +
                     (c.at_initial() ? 0 : 1);
    EXPECT_EQ(held, 2);
    EXPECT_EQ(pool.free_slots(), 0u);
    // Next step: the two holders release (back to I) and the third enters.
    d.control_step();
    EXPECT_FALSE(c.at_initial());
}

TEST(OsmGraph, EdgePrioritySortingIsStable) {
    osm_graph g("sorted");
    const auto I = g.add_state("I");
    const auto A = g.add_state("A");
    const auto e_low = g.add_edge(I, A, 1);
    const auto e_hi = g.add_edge(I, A, 9);
    const auto e_mid1 = g.add_edge(I, A, 5);
    const auto e_mid2 = g.add_edge(I, A, 5);
    g.finalize();
    const auto& order = g.out_edges(I);
    EXPECT_EQ(order, (std::vector<std::int32_t>{e_hi, e_mid1, e_mid2, e_low}));
}

}  // namespace
