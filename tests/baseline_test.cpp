// Baseline simulators: the hand-sequentialized SARM pipeline (SimpleScalar
// surrogate) and the port/wire DE superscalar (SystemC surrogate) must
// agree with their OSM counterparts functionally and in cycle counts.
#include <gtest/gtest.h>

#include "baseline/hardwired_sarm.hpp"
#include "baseline/port_ppc.hpp"
#include "isa/assembler.hpp"
#include "isa/iss.hpp"
#include "mem/main_memory.hpp"
#include "ppc750/ppc750.hpp"
#include "sarm/sarm.hpp"
#include "workloads/workloads.hpp"

namespace {

using namespace osm;

const char* k_kernel = R"(
        li a0, 0
        li a1, 1
        li a2, 300
loop:   mul t0, a1, a1
        add a0, a0, t0
        slli t1, a1, 2
        andi t1, t1, 0xFFC
        li t3, 0x8000
        add t1, t1, t3
        sw t0, 0(t1)
        lw t2, 0(t1)
        add a0, a0, t2
        addi a1, a1, 1
        blt a1, a2, loop
        halt
)";

TEST(HardwiredSarm, MatchesIssFunctionally) {
    const auto img = isa::assemble(k_kernel);
    mem::main_memory m0, m1;
    isa::iss ref(m0);
    ref.load(img);
    ref.run();
    sarm::sarm_config cfg;
    baseline::hardwired_sarm hw(cfg, m1);
    hw.load(img);
    hw.run(50'000'000);
    ASSERT_TRUE(hw.halted());
    EXPECT_EQ(hw.retired(), ref.instret());
    for (unsigned r = 0; r < 32; ++r) EXPECT_EQ(hw.gpr(r), ref.state().gpr[r]) << r;
}

TEST(HardwiredSarm, CycleCountEqualsOsmModel) {
    // Two independent implementations of one machine spec: with identical
    // configurations they agree cycle-for-cycle on this kernel.
    const auto img = isa::assemble(k_kernel);
    mem::main_memory m0, m1;
    sarm::sarm_config cfg;
    sarm::sarm_model osm_model(cfg, m0);
    osm_model.load(img);
    osm_model.run(50'000'000);
    baseline::hardwired_sarm hw(cfg, m1);
    hw.load(img);
    hw.run(50'000'000);
    EXPECT_EQ(hw.cycles(), osm_model.stats().cycles);
}

TEST(HardwiredSarm, ForwardingKnobMatchesOsmEffect) {
    const auto img = isa::assemble(R"(
        li a0, 10
        add a1, a0, a0
        add a2, a1, a1
        add a3, a2, a2
        halt
    )");
    sarm::sarm_config no_fwd;
    no_fwd.forwarding = false;
    mem::main_memory m0, m1;
    sarm::sarm_model osm_model(no_fwd, m0);
    osm_model.load(img);
    osm_model.run(1'000'000);
    baseline::hardwired_sarm hw(no_fwd, m1);
    hw.load(img);
    hw.run(1'000'000);
    EXPECT_EQ(hw.cycles(), osm_model.stats().cycles);
    EXPECT_EQ(hw.gpr(7), osm_model.gpr(7));
}

TEST(PortPpc, MatchesIssFunctionally) {
    const auto img = isa::assemble(k_kernel);
    mem::main_memory m0, m1;
    isa::iss ref(m0);
    ref.load(img);
    ref.run();
    ppc750::p750_config cfg;
    baseline::port_ppc pp(cfg, m1);
    pp.load(img);
    pp.run(50'000'000);
    ASSERT_TRUE(pp.halted());
    EXPECT_EQ(pp.stats().retired, ref.instret());
    for (unsigned r = 0; r < 32; ++r) EXPECT_EQ(pp.gpr(r), ref.state().gpr[r]) << r;
}

TEST(PortPpc, CycleCountWithinPaperToleranceOfOsm) {
    // Paper §5.2: the OSM model and the SystemC model agree within 3%.
    const auto img = isa::assemble(k_kernel);
    mem::main_memory m0, m1;
    ppc750::p750_config cfg;
    ppc750::p750_model osm_model(cfg, m0);
    osm_model.load(img);
    osm_model.run(50'000'000);
    baseline::port_ppc pp(cfg, m1);
    pp.load(img);
    pp.run(50'000'000);
    const double a = static_cast<double>(osm_model.stats().cycles);
    const double b = static_cast<double>(pp.stats().cycles);
    EXPECT_LT(std::abs(a - b) / b, 0.03) << "osm=" << a << " port=" << b;
}

TEST(PortPpc, DeltaCyclesShowDeMachineryOverhead) {
    const auto img = isa::assemble(k_kernel);
    mem::main_memory m1;
    ppc750::p750_config cfg;
    baseline::port_ppc pp(cfg, m1);
    pp.load(img);
    pp.run(50'000'000);
    // Each cycle walks several delta phases: the DE evaluation overhead the
    // paper attributes the SystemC model's slowness to.
    EXPECT_GT(pp.stats().delta_cycles, 5u * pp.stats().cycles);
}

TEST(PortPpc, MispredictRecoveryMatchesOsm) {
    const auto img = isa::assemble(R"(
        li a0, 0
        li a1, 37
loop:   addi a0, a0, 1
        andi t0, a0, 3
        bne t0, zero, skip
        addi a2, a2, 1
skip:   blt a0, a1, loop
        halt
    )");
    mem::main_memory m0, m1;
    ppc750::p750_config cfg;
    ppc750::p750_model osm_model(cfg, m0);
    osm_model.load(img);
    osm_model.run(1'000'000);
    baseline::port_ppc pp(cfg, m1);
    pp.load(img);
    pp.run(1'000'000);
    EXPECT_EQ(pp.stats().mispredicts, osm_model.stats().mispredicts);
    EXPECT_EQ(pp.gpr(6), osm_model.gpr(6));
}

TEST(Baselines, MediabenchWorkloadAgreement) {
    // One real workload end-to-end across all four micro-architecture
    // simulators plus the ISS.
    const auto w = workloads::make_gsm_enc(1);
    mem::main_memory m0, m1, m2, m3, m4;
    isa::iss ref(m0);
    ref.load(w.image);
    ref.run(100'000'000);

    sarm::sarm_config sc;
    sarm::sarm_model sm(sc, m1);
    sm.load(w.image);
    sm.run(100'000'000);
    baseline::hardwired_sarm hw(sc, m2);
    hw.load(w.image);
    hw.run(100'000'000);
    ppc750::p750_config pc;
    ppc750::p750_model pm(pc, m3);
    pm.load(w.image);
    pm.run(100'000'000);
    baseline::port_ppc pp(pc, m4);
    pp.load(w.image);
    pp.run(100'000'000);

    for (unsigned r = 0; r < 32; ++r) {
        const std::uint32_t g = ref.state().gpr[r];
        EXPECT_EQ(sm.gpr(r), g) << "sarm x" << r;
        EXPECT_EQ(hw.gpr(r), g) << "hardwired x" << r;
        EXPECT_EQ(pm.gpr(r), g) << "p750 x" << r;
        EXPECT_EQ(pp.gpr(r), g) << "port x" << r;
    }
    // The OoO superscalar must beat the scalar pipeline on cycles.
    EXPECT_LT(pm.stats().cycles, sm.stats().cycles);
}

}  // namespace
