// PPC32 differential fuzzing: the second front-end's analogue of the
// VR32 random-program equivalence sweep.  The functional ISS and the
// ppc32-750 timing model share one step() by construction, so this suite
// is really exercising the harness plumbing — the registry isa tags, the
// diff runner's cross-ISA skip, the assembler/disassembler round trip on
// generator output, and replay of the committed reproducer corpus under
// tests/corpus/ppc32 (kept out of the VR32 corpus directory, whose
// replay scan is non-recursive by design).
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "mem/main_memory.hpp"
#include "ppc32/assembler.hpp"
#include "ppc32/decode.hpp"
#include "ppc32/disasm.hpp"
#include "ppc32/exec.hpp"
#include "ppc32/randprog.hpp"
#include "sim/diff_runner.hpp"
#include "sim/registry.hpp"

#ifndef OSM_PPC32_CORPUS_DIR
#define OSM_PPC32_CORPUS_DIR "tests/corpus/ppc32"
#endif

namespace {

using namespace osm;
namespace fs = std::filesystem;

const std::vector<std::string> k_ppc_engines = {"ppc32", "ppc32-750"};

TEST(Ppc32Fuzz, RandomProgramsDiffCleanAcrossSeedMatrix) {
    // A bounded matrix in the spirit of fuzz::feature_matrix: sweep the
    // generator's feature toggles so decode, branches, CTR loops, mul/div
    // and the big-endian memory path all get differential coverage.
    struct row {
        const char* name;
        bool mul_div, memory, loops, branches;
    };
    const row rows[] = {
        {"alu_only", false, false, false, false},
        {"branchy", false, false, true, true},
        {"memory", false, true, false, true},
        {"full", true, true, true, true},
    };
    for (const auto& r : rows) {
        for (std::uint64_t seed = 1; seed <= 6; ++seed) {
            ppc32::randprog_options opt;
            opt.seed = seed * 2654435761u + 99;
            opt.blocks = 8;
            opt.block_len = 8;
            opt.with_mul_div = r.mul_div;
            opt.with_memory = r.memory;
            opt.with_loops = r.loops;
            opt.with_branches = r.branches;
            const auto img = ppc32::make_random_program(opt);
            const auto res = sim::diff_engines(k_ppc_engines, img);
            EXPECT_TRUE(res.ok())
                << r.name << " seed " << seed
                << (res.ok() ? "" : ": " + res.divergences[0].to_string());
            for (const auto& run : res.runs) {
                EXPECT_TRUE(run.ran) << r.name << " " << run.engine;
                EXPECT_TRUE(run.halted) << r.name << " " << run.engine;
            }
        }
    }
}

TEST(Ppc32Fuzz, DiffRunnerSkipsOtherIsaEngines) {
    ppc32::randprog_options opt;
    opt.seed = 7;
    const auto img = ppc32::make_random_program(opt);
    // A VR32 engine in the list must sit out a ppc32-reference diff with
    // an explanatory skip, not run the wrong ISA's program.
    const auto res = sim::diff_engines({"ppc32", "iss", "ppc32-750"}, img);
    EXPECT_TRUE(res.ok());
    bool saw_skip = false;
    for (const auto& run : res.runs) {
        if (run.engine == "iss") {
            saw_skip = true;
            EXPECT_FALSE(run.ran);
            EXPECT_NE(run.skip_reason.find("isa mismatch"), std::string::npos)
                << run.skip_reason;
        } else {
            EXPECT_TRUE(run.ran) << run.engine;
        }
    }
    EXPECT_TRUE(saw_skip);
}

TEST(Ppc32Fuzz, GeneratorSourceReassemblesToSameImage) {
    // The reproducer path: make_random_source must assemble to exactly
    // the image make_random_program returns (same seed, same bytes).
    for (std::uint64_t seed : {11u, 12u, 13u}) {
        ppc32::randprog_options opt;
        opt.seed = seed;
        const auto img = ppc32::make_random_program(opt);
        const auto re = ppc32::assemble(ppc32::make_random_source(opt));
        ASSERT_EQ(img.entry, re.entry) << seed;
        ASSERT_EQ(img.segments.size(), re.segments.size()) << seed;
        for (std::size_t i = 0; i < img.segments.size(); ++i) {
            EXPECT_EQ(img.segments[i].base, re.segments[i].base) << seed;
            EXPECT_EQ(img.segments[i].bytes, re.segments[i].bytes) << seed;
        }
    }
}

TEST(Ppc32Fuzz, DisassemblyReassemblesToIdenticalText) {
    // Word-level round trip over generator output: disassemble every text
    // word, reassemble the line at the same address, compare words.
    // Branches render absolute targets, so each line is re-anchored by
    // assembling it alone at its original address.
    for (std::uint64_t seed : {21u, 22u}) {
        ppc32::randprog_options opt;
        opt.seed = seed;
        const auto img = ppc32::make_random_program(opt);
        mem::main_memory m;
        img.load_into(m);
        for (const auto& seg : img.segments) {
            if (img.entry < seg.base ||
                img.entry >= seg.base + seg.bytes.size()) {
                continue;
            }
            for (std::uint32_t a = seg.base;
                 a + 4 <= seg.base + seg.bytes.size(); a += 4) {
                const std::uint32_t w = ppc32::read32be(m, a);
                std::string text = ppc32::disassemble_word(w, a);
                const auto semi = text.find(';');  // strip disp comment
                if (semi != std::string::npos) text.resize(semi);
                const auto re = ppc32::assemble("_start: " + text, a);
                mem::main_memory rm;
                re.load_into(rm);
                EXPECT_EQ(ppc32::read32be(rm, a), w)
                    << "seed " << seed << " @" << std::hex << a << ": "
                    << text;
            }
        }
    }
}

TEST(Ppc32Fuzz, CommittedCorpusReplaysClean) {
    std::vector<fs::path> sources;
    for (const auto& e : fs::directory_iterator(OSM_PPC32_CORPUS_DIR)) {
        if (e.path().extension() == ".s") sources.push_back(e.path());
    }
    ASSERT_GE(sources.size(), 3u)
        << "committed ppc32 corpus missing from " OSM_PPC32_CORPUS_DIR;
    for (const auto& p : sources) {
        std::ifstream in(p);
        std::stringstream ss;
        ss << in.rdbuf();
        const auto img = ppc32::assemble(ss.str());
        const auto res = sim::diff_engines(k_ppc_engines, img);
        EXPECT_TRUE(res.ok())
            << p << (res.ok() ? "" : ": " + res.divergences[0].to_string());
        for (const auto& run : res.runs) {
            EXPECT_TRUE(run.halted) << p << " " << run.engine;
        }
    }
}

}  // namespace
