// Tests for the sharded campaign service (src/serve): byte-identical
// merges across worker counts, the content-addressed result cache
// (cold/warm identity, eviction, corruption and key-collision rejection),
// watchdog preemption with checkpoint migration, deterministic wedge
// timeouts, the speculative parallel minimizer, and thread-safety smokes.
//
// Engine-registry-mutating tests (the slow/wedged/broken wrappers) follow
// the fuzz_test.cpp convention: ctest runs each discovered test in its own
// process, so per-test registration never leaks across tests.
#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "fuzz/campaign.hpp"
#include "fuzz/corpus.hpp"
#include "fuzz/minimize.hpp"
#include "serve/campaign_service.hpp"
#include "serve/job_queue.hpp"
#include "serve/result_cache.hpp"
#include "serve/shard_plan.hpp"
#include "sim/registry.hpp"
#include "workloads/randprog.hpp"

namespace {

using namespace osm;

std::filesystem::path scratch_dir(const std::string& tag) {
    return std::filesystem::temp_directory_path() /
           (tag + "_" + std::to_string(::getpid()));
}

fuzz::campaign_options quick_campaign(std::uint64_t seeds) {
    fuzz::campaign_options opt;
    opt.seed_lo = 1;
    opt.seed_hi = seeds;
    opt.quick = true;
    opt.minimize = false;
    opt.max_cycles = 10'000'000;
    return opt;
}

serve::serve_options serve_opts(const fuzz::campaign_options& c, unsigned jobs) {
    serve::serve_options so;
    so.campaign = c;
    so.jobs = jobs;
    return so;
}

// ---- merge determinism -----------------------------------------------------

TEST(ServeMerge, CampaignSummaryIsByteIdenticalAcrossWorkerCounts) {
    const auto opt = quick_campaign(200);
    const auto serial = fuzz::run_campaign(opt).summary().to_json();
    ASSERT_FALSE(serial.empty());
    for (unsigned jobs : {1u, 2u, 8u}) {
        const auto sr = serve::run_campaign_service(serve_opts(opt, jobs));
        EXPECT_TRUE(sr.timeouts.empty()) << "jobs=" << jobs;
        EXPECT_EQ(sr.campaign.summary().to_json(), serial) << "jobs=" << jobs;
        EXPECT_EQ(sr.total_jobs, 200u);
    }
}

TEST(ServeMerge, ReplayDirCorpusFoldsIdenticallyToSerial) {
    const auto dir = scratch_dir("osm_serve_corpus_merge");
    std::filesystem::remove_all(dir);
    for (std::uint64_t seed : {5u, 6u}) {
        workloads::randprog_options po;
        po.seed = seed;
        fuzz::reproducer_meta meta;
        meta.name = "merge_seed_" + std::to_string(seed);
        meta.max_cycles = 10'000'000;
        fuzz::save_reproducer(dir.string(), meta,
                              workloads::make_random_program(po));
    }
    auto opt = quick_campaign(12);
    opt.replay_dir = dir.string();
    const auto serial = fuzz::run_campaign(opt);
    EXPECT_EQ(serial.corpus_replayed, 2u);
    const auto sr = serve::run_campaign_service(serve_opts(opt, 3));
    EXPECT_EQ(sr.campaign.summary().to_json(), serial.summary().to_json());
    std::filesystem::remove_all(dir);
}

TEST(ServeMerge, LockstepSweepIsIdenticalAcrossWorkerCounts) {
    serve::lockstep_sweep_options lo;
    lo.seed_lo = 1;
    lo.seed_hi = 4;
    lo.engines = {"sarm"};
    lo.max_retired = 200'000;
    const auto one = serve::run_lockstep_sweep(lo);
    lo.jobs = 3;
    const auto three = serve::run_lockstep_sweep(lo);
    EXPECT_EQ(one.probes, 4u);
    EXPECT_EQ(one.summary().to_json(), three.summary().to_json());
}

// ---- result cache ----------------------------------------------------------

TEST(ResultCache, WarmLookupsReturnTheStoredState) {
    serve::result_cache cache({256, "", {}});
    const auto opt = quick_campaign(6);
    const auto engines = fuzz::campaign_engines(opt);
    std::vector<std::string> cold, warm;
    for (std::uint64_t s = 1; s <= 6; ++s) {
        fuzz::campaign_result r;
        fuzz::fold_seed_outcome(fuzz::run_seed_unit(opt, engines, s, &cache),
                                opt, r);
        cold.push_back(r.summary().to_json());
    }
    EXPECT_GT(cache.stats().stores, 0u);
    EXPECT_EQ(cache.stats().hits, 0u);
    for (std::uint64_t s = 1; s <= 6; ++s) {
        fuzz::campaign_result r;
        fuzz::fold_seed_outcome(fuzz::run_seed_unit(opt, engines, s, &cache),
                                opt, r);
        warm.push_back(r.summary().to_json());
    }
    EXPECT_EQ(cold, warm);
    EXPECT_GT(cache.stats().hits, 0u);
    EXPECT_EQ(cache.stats().hits + cache.stats().misses, cache.stats().lookups);
}

TEST(ResultCache, DiskWarmReplayIsByteIdenticalAndSkipsExecution) {
    const auto dir = scratch_dir("osm_serve_disk_cache");
    std::filesystem::remove_all(dir);
    auto so = serve_opts(quick_campaign(16), 2);
    so.cache_dir = dir.string();
    const auto cold = serve::run_campaign_service(so);
    EXPECT_GT(cold.cache.stores, 0u);
    EXPECT_EQ(cold.cache.disk_hits, 0u);

    const auto warm = serve::run_campaign_service(so);
    EXPECT_EQ(warm.campaign.summary().to_json(),
              cold.campaign.summary().to_json());
    EXPECT_GT(warm.cache.disk_hits, 0u);
    EXPECT_EQ(warm.runner.runs, 0u)
        << "a fully warm cache must not execute any engine";
    std::filesystem::remove_all(dir);
}

TEST(ResultCache, KeyCoversEverythingThatDeterminesTheEndState) {
    workloads::randprog_options po;
    po.seed = 3;
    const auto img = workloads::make_random_program(po);
    sim::engine_config cfg;
    const auto base = serve::result_cache::cache_key("iss", img, cfg, 1000);
    EXPECT_NE(base, serve::result_cache::cache_key("sarm", img, cfg, 1000));
    EXPECT_NE(base, serve::result_cache::cache_key("iss", img, cfg, 2000));
    sim::engine_config nf = cfg;
    nf.forwarding = false;
    EXPECT_NE(base, serve::result_cache::cache_key("iss", img, nf, 1000));
    po.seed = 4;
    const auto other = workloads::make_random_program(po);
    EXPECT_NE(base, serve::result_cache::cache_key("iss", other, cfg, 1000));
    // Same inputs, fresh image object: the key depends on content only.
    po.seed = 3;
    EXPECT_EQ(base, serve::result_cache::cache_key(
                        "iss", workloads::make_random_program(po), cfg, 1000));
}

TEST(ResultCache, EntryRoundTripsAndRejectsCorruption) {
    sim::end_state st;
    st.halted = true;
    st.retired = 12345;
    st.gpr[10] = 0xdeadbeef;
    st.fpr[2] = 0x3f800000;
    st.console = "checksum 42\n";
    const std::string key = "engine=iss;test-key";
    const auto bytes = serve::result_cache::serialize_entry(key, st);

    const auto back = serve::result_cache::parse_entry(key, bytes);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->halted, st.halted);
    EXPECT_EQ(back->retired, st.retired);
    EXPECT_EQ(back->gpr, st.gpr);
    EXPECT_EQ(back->fpr, st.fpr);
    EXPECT_EQ(back->console, st.console);

    // A key mismatch (hash collision on disk) degrades to a miss.
    EXPECT_FALSE(serve::result_cache::parse_entry("engine=iss;other-key", bytes));
    // Truncation at every prefix length must be rejected, never crash.
    for (std::size_t len : {std::size_t{0}, std::size_t{4}, bytes.size() / 2,
                            bytes.size() - 1}) {
        std::vector<std::uint8_t> cut(bytes.begin(), bytes.begin() + len);
        EXPECT_FALSE(serve::result_cache::parse_entry(key, cut)) << len;
    }
    // Any single bit flip breaks the checksum (or the key/magic check).
    for (std::size_t pos : {std::size_t{0}, bytes.size() / 2, bytes.size() - 1}) {
        auto bad = bytes;
        bad[pos] ^= 0x01;
        EXPECT_FALSE(serve::result_cache::parse_entry(key, bad)) << pos;
    }
}

TEST(ResultCache, CorruptDiskEntryIsRejectedAndRecomputed) {
    const auto dir = scratch_dir("osm_serve_corrupt_entry");
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);

    workloads::randprog_options po;
    po.seed = 7;
    const auto img = workloads::make_random_program(po);
    serve::result_cache cache({16, dir.string(), {}});
    const auto key = serve::result_cache::cache_key("iss", img, {}, 10'000'000);

    // A file that carries a *different* key at this path models a 64-bit
    // hash collision; garbage models corruption.  Both must read as a miss.
    sim::end_state bogus;
    bogus.gpr[1] = 99;
    const auto wrong = serve::result_cache::serialize_entry("engine=other;x", bogus);
    {
        std::ofstream out(cache.entry_path(key), std::ios::binary);
        out.write(reinterpret_cast<const char*>(wrong.data()),
                  static_cast<std::streamsize>(wrong.size()));
    }
    EXPECT_FALSE(cache.lookup("iss", img, 10'000'000));
    EXPECT_GE(cache.stats().rejected, 1u);

    {
        std::ofstream out(cache.entry_path(key), std::ios::binary);
        out << "not a cache entry";
    }
    serve::result_cache fresh({16, dir.string(), {}});
    EXPECT_FALSE(fresh.lookup("iss", img, 10'000'000));
    EXPECT_GE(fresh.stats().rejected, 1u);
    std::filesystem::remove_all(dir);
}

TEST(ResultCache, LruEvictionKeepsCapacityBounded) {
    serve::result_cache cache({2, "", {}});
    sim::end_state st;
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
        workloads::randprog_options po;
        po.seed = seed;
        st.retired = seed;
        cache.store("iss", workloads::make_random_program(po), 1000, st);
    }
    EXPECT_LE(cache.size(), 2u);
    EXPECT_GE(cache.stats().evictions, 3u);
    // Most-recent entry survives; the oldest was evicted.
    workloads::randprog_options po;
    po.seed = 5;
    EXPECT_TRUE(cache.lookup("iss", workloads::make_random_program(po), 1000));
    po.seed = 1;
    EXPECT_FALSE(cache.lookup("iss", workloads::make_random_program(po), 1000));
}

// ---- job queue / shard plan ------------------------------------------------

TEST(JobQueue, StealsFromTheLongestShardWhenOwnShardIsDry) {
    serve::job_queue q(2);
    for (std::uint64_t id = 0; id < 3; ++id) {
        serve::job j;
        j.id = id;
        j.origin_shard = 0;
        q.push_initial(0, std::move(j));
    }
    // Shard 1 owns nothing: its pop must steal from the *back* of shard 0.
    auto stolen = q.pop(1);
    ASSERT_TRUE(stolen.has_value());
    EXPECT_EQ(stolen->id, 2u);
    EXPECT_EQ(q.steals(), 1u);
    q.finish();
    EXPECT_EQ(q.pop(0)->id, 0u);
    q.finish();
    EXPECT_EQ(q.pop(0)->id, 1u);
    q.finish();
    // All jobs finished: pop unblocks with nullopt on every shard.
    EXPECT_FALSE(q.pop(0).has_value());
    EXPECT_FALSE(q.pop(1).has_value());
}

TEST(ShardPlan, DealsSeedsAndCorpusRoundRobinWithStableIds) {
    const auto plan = serve::plan_campaign({"b.s", "a.s"}, 1, 5, 2);
    EXPECT_EQ(plan.total_jobs, 7u);  // 2 corpus + 5 seeds
    ASSERT_EQ(plan.shards.size(), 2u);
    // Ids are the fold order: corpus artifacts first (as given, already
    // sorted by the caller), then seeds ascending.
    std::vector<std::uint64_t> ids;
    for (const auto& shard : plan.shards)
        for (const auto& j : shard) ids.push_back(j.id);
    std::sort(ids.begin(), ids.end());
    for (std::uint64_t i = 0; i < ids.size(); ++i) EXPECT_EQ(ids[i], i);
    EXPECT_EQ(plan.shards[0].front().kind, serve::job_kind::corpus);
}

// ---- thread-safety smokes --------------------------------------------------

TEST(ThreadSafety, RegistryCreateIsSafeFromConcurrentWorkers) {
    std::vector<std::thread> threads;
    std::atomic<std::uint64_t> made{0};
    for (unsigned t = 0; t < 8; ++t) {
        threads.emplace_back([&made] {
            for (unsigned i = 0; i < 25; ++i) {
                const auto names =
                    sim::engine_registry::instance().names_for_isa("vr32");
                for (const auto& n : names) {
                    auto e = sim::engine_registry::instance().create(n, {});
                    made += e != nullptr ? 1 : 0;
                }
            }
        });
    }
    for (auto& t : threads) t.join();
    EXPECT_GT(made.load(), 0u);
}

TEST(ThreadSafety, SharedResultCacheUnderConcurrentMixedTraffic) {
    serve::result_cache cache({8, "", {}});
    std::vector<isa::program_image> imgs;
    for (std::uint64_t s = 1; s <= 4; ++s) {
        workloads::randprog_options po;
        po.seed = s;
        imgs.push_back(workloads::make_random_program(po));
    }
    std::vector<std::thread> threads;
    for (unsigned t = 0; t < 4; ++t) {
        threads.emplace_back([&cache, &imgs, t] {
            sim::end_state st;
            st.retired = t;
            for (unsigned i = 0; i < 200; ++i) {
                const auto& img = imgs[(t + i) % imgs.size()];
                if (i % 2 == 0) cache.store("iss", img, 1000, st);
                else (void)cache.lookup("iss", img, 1000);
            }
        });
    }
    for (auto& t : threads) t.join();
    EXPECT_LE(cache.size(), 8u);
    const auto st = cache.stats();
    EXPECT_EQ(st.lookups, 400u);
    EXPECT_EQ(st.stores, 400u);
}

// ---- engine wrappers for preemption / wedge tests (registry-mutating;
// ---- keep below all tests that enumerate registered engines) --------------

/// ISS wrapper that sleeps on every run() call: wall-clock slow but
/// architecturally identical to the ISS, so campaigns stay clean while the
/// watchdog gets something worth preempting.  Checkpointing delegates to
/// the inner ISS, which is what lets a preempted run migrate.
class slow_engine final : public sim::engine {
public:
    explicit slow_engine(const sim::engine_config& cfg)
        : inner_(sim::make_engine("iss", cfg)) {}
    std::string_view name() const override { return "slowpoke"; }
    void load(const isa::program_image& img) override { inner_->load(img); }
    std::uint64_t run(std::uint64_t max_cycles) override {
        std::this_thread::sleep_for(std::chrono::milliseconds(3));
        return inner_->run(max_cycles);
    }
    bool halted() const override { return inner_->halted(); }
    std::uint32_t gpr(unsigned r) const override { return inner_->gpr(r); }
    std::uint32_t fpr(unsigned r) const override { return inner_->fpr(r); }
    std::uint32_t pc() const override { return inner_->pc(); }
    const std::string& console() const override { return inner_->console(); }
    std::uint64_t cycles() const override { return inner_->cycles(); }
    std::uint64_t retired() const override { return inner_->retired(); }
    bool models_timing() const override { return false; }
    sim::checkpoint_level checkpoint_support() const override {
        return inner_->checkpoint_support();
    }
    sim::checkpoint save_state() const override { return inner_->save_state(); }
    void restore_state(const sim::checkpoint& ck) override {
        inner_->restore_state(ck);
    }

private:
    std::unique_ptr<sim::engine> inner_;
};

/// An engine that consumes its cycle budget without retiring anything and
/// never halts: the deterministic zero-progress strike rule must turn it
/// into a structured timeout, not a hang.
class wedged_engine final : public sim::engine {
public:
    explicit wedged_engine(const sim::engine_config&) {}
    std::string_view name() const override { return "wedge"; }
    void load(const isa::program_image&) override {}
    std::uint64_t run(std::uint64_t max_cycles) override { return max_cycles; }
    bool halted() const override { return false; }
    std::uint32_t gpr(unsigned) const override { return 0; }
    std::uint32_t fpr(unsigned) const override { return 0; }
    std::uint32_t pc() const override { return 0; }
    const std::string& console() const override { return console_; }
    std::uint64_t cycles() const override { return 0; }
    std::uint64_t retired() const override { return 0; }
    bool models_timing() const override { return false; }

private:
    std::string console_;
};

void register_slow_engine() {
    sim::engine_registry::instance().add(
        {"slowpoke", "wall-clock-slow ISS wrapper (test only)",
         [](const sim::engine_config& cfg) {
             return std::make_unique<slow_engine>(cfg);
         }});
}

void register_wedged_engine() {
    sim::engine_registry::instance().add(
        {"wedge", "never-retiring engine (test only)",
         [](const sim::engine_config& cfg) {
             return std::make_unique<wedged_engine>(cfg);
         }});
}

TEST(Preemption, WatchdogMigratesSlowJobsViaCheckpointWithIdenticalSummary) {
    register_slow_engine();
    auto opt = quick_campaign(4);
    opt.engines = {"iss", "slowpoke"};
    const auto serial = fuzz::run_campaign(opt);
    ASSERT_TRUE(serial.ok());

    auto so = serve_opts(opt, 2);
    so.watchdog_ms = 10;
    so.slice_cycles = 16;       // quick-matrix programs retire only a few
                                // hundred instructions; tiny slices give the
                                // watchdog real preemption points
    so.max_resumes = 100'000;   // the job must finish, however often it moves
    const auto sr = serve::run_campaign_service(so);

    EXPECT_TRUE(sr.timeouts.empty());
    EXPECT_EQ(sr.campaign.summary().to_json(), serial.summary().to_json());
    EXPECT_GT(sr.runner.checkpoints, 0u) << "watchdog never preempted anything";
    EXPECT_GT(sr.runner.restores, 0u) << "no preempted job resumed from its checkpoint";
    std::uint64_t resumes = 0, preempts = 0;
    for (const auto& w : sr.workers) {
        resumes += w.resumes;
        preempts += w.preempts;
    }
    EXPECT_GT(preempts, 0u);
    EXPECT_GT(resumes, 0u);
}

TEST(Preemption, WedgedEngineBecomesAStructuredTimeout) {
    register_wedged_engine();
    auto opt = quick_campaign(2);
    opt.engines = {"iss", "wedge"};
    auto so = serve_opts(opt, 1);
    so.wedge_strikes = 3;
    const auto sr = serve::run_campaign_service(so);

    ASSERT_EQ(sr.timeouts.size(), 2u);
    for (const auto& t : sr.timeouts) {
        EXPECT_EQ(t.kind, serve::job_kind::seed);
        EXPECT_NE(t.detail.find("wedged"), std::string::npos) << t.detail;
    }
    // Timed-out jobs stay out of the merged campaign summary.
    EXPECT_EQ(sr.campaign.programs, 0u);
    // The wedge fired on strike count, not on exhausting the cycle budget.
    EXPECT_LT(sr.runner.slices, 16u);
}

// ---- parallel minimizer ----------------------------------------------------

/// fuzz_test.cpp's broken engine, reused to give the minimizer a real
/// divergence: x10 reads corrupt once the program has printed anything.
class broken_after_print_engine final : public sim::engine {
public:
    explicit broken_after_print_engine(const sim::engine_config& cfg)
        : inner_(sim::make_engine("iss", cfg)) {}
    std::string_view name() const override { return "brk_print"; }
    void load(const isa::program_image& img) override { inner_->load(img); }
    std::uint64_t run(std::uint64_t max_cycles) override {
        return inner_->run(max_cycles);
    }
    bool halted() const override { return inner_->halted(); }
    std::uint32_t gpr(unsigned r) const override {
        const bool armed = !inner_->console().empty();
        return inner_->gpr(r) ^ ((armed && r == 10) ? 0xdead0000u : 0u);
    }
    std::uint32_t fpr(unsigned r) const override { return inner_->fpr(r); }
    std::uint32_t pc() const override { return inner_->pc(); }
    const std::string& console() const override { return inner_->console(); }
    std::uint64_t cycles() const override { return inner_->cycles(); }
    std::uint64_t retired() const override { return inner_->retired(); }
    bool models_timing() const override { return false; }

private:
    std::unique_ptr<sim::engine> inner_;
};

TEST(ParallelMinimize, SpeculativeBatchingMatchesSerialExactly) {
    sim::engine_registry::instance().add(
        {"brk_print", "ISS wrapper corrupting x10 after console output (test only)",
         [](const sim::engine_config& cfg) {
             return std::make_unique<broken_after_print_engine>(cfg);
         }});
    workloads::randprog_options po;
    po.seed = 33;
    const auto img = workloads::make_random_program(po);

    fuzz::minimize_options mo;
    mo.engines = {"iss", "brk_print"};
    mo.max_cycles = 2'000'000;
    const auto serial = fuzz::minimize_divergence(img, mo);
    ASSERT_TRUE(serial.was_divergent);

    for (unsigned jobs : {2u, 4u}) {
        fuzz::minimize_options pm = mo;
        pm.jobs = jobs;
        const auto par = fuzz::minimize_divergence(img, pm);
        ASSERT_TRUE(par.was_divergent) << "jobs=" << jobs;
        EXPECT_EQ(par.minimized_words, serial.minimized_words) << "jobs=" << jobs;
        EXPECT_EQ(par.probes, serial.probes)
            << "speculative probe accounting must replay the serial charge order";
        EXPECT_EQ(par.first.to_string(), serial.first.to_string());
        ASSERT_EQ(par.image.segments.size(), serial.image.segments.size());
        for (std::size_t s = 0; s < serial.image.segments.size(); ++s) {
            EXPECT_EQ(par.image.segments[s].bytes, serial.image.segments[s].bytes)
                << "jobs=" << jobs << " segment " << s;
        }
    }
}

// ---- corpus robustness -----------------------------------------------------

TEST(CorpusRobustness, UnusableArtifactIsSkippedWithAReasonNotFatal) {
    const auto dir = scratch_dir("osm_serve_bad_corpus");
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    {
        std::ofstream bad(dir / "broken.s");
        bad << "this is not an instruction\n";
    }
    workloads::randprog_options po;
    po.seed = 9;
    fuzz::reproducer_meta meta;
    meta.name = "good_artifact";
    // Replay honours the artifact's own engine list; pin it (and the
    // campaign's) because earlier tests in this binary register broken
    // wrapper engines that an "all" list would pick up when the whole
    // suite runs in one process.
    meta.engines = "iss,sarm,hw";
    meta.max_cycles = 10'000'000;
    fuzz::save_reproducer(dir.string(), meta, workloads::make_random_program(po));

    auto opt = quick_campaign(2);
    opt.engines = {"iss", "sarm", "hw"};
    opt.replay_dir = dir.string();
    const auto serial = fuzz::run_campaign(opt);
    EXPECT_TRUE(serial.ok());
    EXPECT_EQ(serial.corpus_replayed, 1u);
    EXPECT_EQ(serial.corpus_skipped, 1u);
    ASSERT_EQ(serial.corpus_skips.size(), 1u);
    EXPECT_EQ(serial.corpus_skips[0].first, "broken");
    EXPECT_FALSE(serial.corpus_skips[0].second.empty())
        << "a skip must say why";
    // The skip is part of the deterministic summary, and the sharded
    // service reproduces it byte-for-byte.
    const auto json = serial.summary().to_json();
    EXPECT_NE(json.find("corpus.skipped"), std::string::npos);
    const auto sr = serve::run_campaign_service(serve_opts(opt, 2));
    EXPECT_EQ(sr.campaign.summary().to_json(), json);
    std::filesystem::remove_all(dir);
}

}  // namespace
