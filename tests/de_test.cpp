// Discrete-event kernel: event ordering, delta-cycle signal semantics,
// module sensitivity, and the periodic clock.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "de/clock.hpp"
#include "de/event_queue.hpp"
#include "de/kernel.hpp"
#include "de/module.hpp"
#include "de/signal.hpp"

namespace {

using namespace osm::de;

TEST(EventQueue, TimeOrdered) {
    event_queue q;
    std::vector<int> order;
    q.push(5, [&] { order.push_back(5); });
    q.push(1, [&] { order.push_back(1); });
    q.push(3, [&] { order.push_back(3); });
    while (!q.empty()) q.pop()();
    EXPECT_EQ(order, (std::vector<int>{1, 3, 5}));
}

TEST(EventQueue, StableForEqualTimestamps) {
    event_queue q;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i) {
        q.push(7, [&order, i] { order.push_back(i); });
    }
    while (!q.empty()) q.pop()();
    for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

// Regression: clear() restarts the FIFO sequence counter; events pushed at
// the same tick after a clear() must still fire in push order.  (The old
// implementation popped through a const_cast of priority_queue::top(),
// which is undefined behaviour — the heap rewrite must preserve ordering.)
TEST(EventQueue, StableAcrossClear) {
    event_queue q;
    std::vector<int> order;
    q.push(7, [&] { order.push_back(-1); });
    q.push(7, [&] { order.push_back(-2); });
    q.clear();
    EXPECT_TRUE(q.empty());
    for (int i = 0; i < 10; ++i) {
        q.push(7, [&order, i] { order.push_back(i); });
    }
    q.push(3, [&] { order.push_back(100); });
    while (!q.empty()) q.pop()();
    ASSERT_EQ(order.size(), 11u);
    EXPECT_EQ(order[0], 100);  // earlier tick first, cleared events gone
    for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i + 1)], i);
}

TEST(Kernel, RunUntilDeadline) {
    kernel k;
    int fired = 0;
    k.schedule_at(10, [&] { ++fired; });
    k.schedule_at(20, [&] { ++fired; });
    k.schedule_at(30, [&] { ++fired; });
    EXPECT_EQ(k.run_until(20), 2u);
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(k.now(), 20u);
    k.run_until();
    EXPECT_EQ(fired, 3);
}

TEST(Kernel, EventsMayScheduleEvents) {
    kernel k;
    std::vector<tick_t> times;
    std::function<void()> chain = [&] {
        times.push_back(k.now());
        if (times.size() < 5) k.schedule_in(2, chain);
    };
    k.schedule_at(0, chain);
    k.run_until();
    EXPECT_EQ(times, (std::vector<tick_t>{0, 2, 4, 6, 8}));
}

// A module that copies in -> out with one delta of latency.
class copier : public module {
public:
    copier(kernel& k, osm::de::signal<int>& in, osm::de::signal<int>& out)
        : module(k, "copier"), in_(in), out_(out) {
        in_.add_sensitive(this);
    }
    void evaluate() override {
        ++evals;
        out_.write(in_.read());
    }
    int evals = 0;

private:
    osm::de::signal<int>& in_;
    osm::de::signal<int>& out_;
};

TEST(Signals, TwoPhaseUpdateAndSensitivity) {
    kernel k;
    osm::de::signal<int> a(k, "a", 0);
    osm::de::signal<int> b(k, "b", 0);
    copier c(k, a, b);

    k.schedule_at(1, [&] { a.write(42); });
    k.run_until();
    EXPECT_EQ(a.read(), 42);
    EXPECT_EQ(b.read(), 42);
    EXPECT_EQ(c.evals, 1);
}

TEST(Signals, NoChangeNoNotify) {
    kernel k;
    osm::de::signal<int> a(k, "a", 7);
    osm::de::signal<int> b(k, "b", 0);
    copier c(k, a, b);
    k.schedule_at(1, [&] { a.write(7); });  // same value
    k.run_until();
    EXPECT_EQ(c.evals, 0);
    EXPECT_EQ(b.read(), 0);
}

TEST(Signals, ChainSettlesWithinOneTimestep) {
    kernel k;
    osm::de::signal<int> a(k, "a", 0);
    osm::de::signal<int> b(k, "b", 0);
    osm::de::signal<int> c(k, "c", 0);
    copier m1(k, a, b);
    copier m2(k, b, c);
    k.schedule_at(3, [&] { a.write(9); });
    k.run_until();
    EXPECT_EQ(c.read(), 9);
    EXPECT_EQ(k.now(), 3u);  // all deltas at t=3
    EXPECT_GE(k.delta_count(), 2u);
}

TEST(Clock, FiresPeriodically) {
    kernel k;
    osm::de::clock clk(k, 10);
    std::vector<tick_t> edges;
    clk.on_edge([&] {
        edges.push_back(k.now());
        if (edges.size() == 4) clk.stop();
    });
    clk.start();
    k.run_until();
    EXPECT_EQ(edges, (std::vector<tick_t>{0, 10, 20, 30}));
    EXPECT_EQ(clk.edges(), 4u);
}

TEST(Clock, CallbackOrderIsRegistrationOrder) {
    kernel k;
    osm::de::clock clk(k, 1);
    std::string log;
    clk.on_edge([&] { log += 'a'; });
    clk.on_edge([&] { log += 'b'; });
    clk.on_edge([&] {
        log += 'c';
        if (log.size() >= 6) clk.stop();
    });
    clk.start();
    k.run_until(100);
    EXPECT_EQ(log.substr(0, 6), "abcabc");
}

TEST(Kernel, ResetClearsState) {
    kernel k;
    int fired = 0;
    k.schedule_at(5, [&] { ++fired; });
    k.reset();
    k.run_until();
    EXPECT_EQ(fired, 0);
    EXPECT_EQ(k.now(), 0u);
}

}  // namespace
