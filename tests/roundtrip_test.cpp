// Round-trip property: assemble -> disassemble -> reassemble is
// word-identical.
//
// The assembler and disassembler are both generated-table shims, so a
// table (or spec) change that breaks either direction shows up as a
// byte diff here.  The property is checked over every committed
// examples/asm program, every fuzz regression-corpus reproducer, and a
// seeded randprog sweep across the feature matrix (memory, branches,
// mul/div, FP, hazard templates).
//
// Note the property is about *encode-canonical* images: programs whose
// words came out of the assembler/encoder.  Arbitrary words with junk
// in encode-only/ignored spans intentionally re-encode canonically.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "isa/assembler.hpp"
#include "isa/disasm.hpp"
#include "isa/encoding.hpp"
#include "isa/program.hpp"
#include "workloads/randprog.hpp"

namespace {

using namespace osm;
namespace fs = std::filesystem;

std::string read_file(const fs::path& p) {
    std::ifstream f(p, std::ios::binary);
    EXPECT_TRUE(f.is_open()) << p;
    std::ostringstream ss;
    ss << f.rdbuf();
    return ss.str();
}

std::string hex(std::uint32_t v) {
    char buf[16];
    std::snprintf(buf, sizeof buf, "0x%X", v);
    return buf;
}

std::uint32_t word_at(const isa::program_image::segment& seg, std::size_t off) {
    return static_cast<std::uint32_t>(seg.bytes[off]) |
           static_cast<std::uint32_t>(seg.bytes[off + 1]) << 8 |
           static_cast<std::uint32_t>(seg.bytes[off + 2]) << 16 |
           static_cast<std::uint32_t>(seg.bytes[off + 3]) << 24;
}

const isa::program_image::segment* text_segment(const isa::program_image& img) {
    for (const auto& seg : img.segments) {
        if (img.entry >= seg.base && img.entry < seg.base + seg.bytes.size()) {
            return &seg;
        }
    }
    return img.segments.empty() ? nullptr : &img.segments.front();
}

/// Rebuild assembly source purely from the disassembler: one
/// `disassemble()` line per text word (absolute branch/jal targets make
/// this position-faithful), plus raw data dumps for the other segments.
std::string disassembly_of(const isa::program_image& img) {
    std::string out;
    const isa::program_image::segment* text = text_segment(img);
    if (text != nullptr) {
        out += ".text " + hex(text->base) + "\n";
        const std::size_t words = text->bytes.size() / 4;
        for (std::size_t i = 0; i < words; ++i) {
            const std::uint32_t pc =
                text->base + static_cast<std::uint32_t>(i * 4);
            if (pc == img.entry && img.entry != text->base) out += "_start:\n";
            const auto di = isa::decode(word_at(*text, i * 4));
            if (di.code == isa::op::invalid) {
                out += "    .word " + hex(di.raw) + "\n";
            } else {
                out += "    " + isa::disassemble(di, pc) + "\n";
            }
        }
        for (std::size_t i = words * 4; i < text->bytes.size(); ++i) {
            out += "    .byte " + hex(text->bytes[i]) + "\n";
        }
    }
    for (const auto& seg : img.segments) {
        if (&seg == text) continue;
        out += ".data " + hex(seg.base) + "\n";
        std::size_t i = 0;
        for (; i + 4 <= seg.bytes.size(); i += 4) {
            out += "    .word " + hex(word_at(seg, i)) + "\n";
        }
        for (; i < seg.bytes.size(); ++i) {
            out += "    .byte " + hex(seg.bytes[i]) + "\n";
        }
    }
    return out;
}

void expect_round_trip(const isa::program_image& img, const std::string& what) {
    const std::string dis = disassembly_of(img);
    isa::program_image again;
    try {
        again = isa::assemble(dis);
    } catch (const isa::asm_error& e) {
        FAIL() << what << ": reassembly failed at line " << e.line() << ": "
               << e.what() << "\n--- disassembly ---\n" << dis;
    }
    ASSERT_EQ(again.segments.size(), img.segments.size()) << what;
    EXPECT_EQ(again.entry, img.entry) << what;
    for (std::size_t s = 0; s < img.segments.size(); ++s) {
        // Segment order may differ (text first in the rebuilt source);
        // match by base address.
        const auto& want = img.segments[s];
        const isa::program_image::segment* got = nullptr;
        for (const auto& seg : again.segments) {
            if (seg.base == want.base) got = &seg;
        }
        ASSERT_NE(got, nullptr) << what << ": segment at " << hex(want.base);
        ASSERT_EQ(got->bytes.size(), want.bytes.size())
            << what << ": segment at " << hex(want.base);
        for (std::size_t i = 0; i < want.bytes.size(); ++i) {
            ASSERT_EQ(got->bytes[i], want.bytes[i])
                << what << ": byte " << i << " of segment at " << hex(want.base)
                << "\n--- disassembly ---\n" << dis;
        }
    }
}

void round_trip_dir(const char* dir) {
    std::vector<fs::path> sources;
    for (const auto& entry : fs::directory_iterator(dir)) {
        if (entry.path().extension() == ".s") sources.push_back(entry.path());
    }
    std::sort(sources.begin(), sources.end());
    ASSERT_FALSE(sources.empty()) << dir;
    for (const fs::path& p : sources) {
        SCOPED_TRACE(p.string());
        expect_round_trip(isa::assemble(read_file(p)), p.filename().string());
    }
}

TEST(RoundTrip, ExamplePrograms) { round_trip_dir(OSM_EXAMPLES_DIR); }

TEST(RoundTrip, FuzzRegressionCorpus) { round_trip_dir(OSM_CORPUS_DIR); }

TEST(RoundTrip, RandprogFeatureMatrix) {
    workloads::randprog_options base;
    base.blocks = 8;
    base.block_len = 8;
    struct row {
        const char* name;
        void (*tweak)(workloads::randprog_options&);
    };
    const row rows[] = {
        {"plain", [](workloads::randprog_options&) {}},
        {"fp", [](workloads::randprog_options& o) { o.with_fp = true; }},
        {"nomem", [](workloads::randprog_options& o) { o.with_memory = false; }},
        {"nobranch", [](workloads::randprog_options& o) { o.with_branches = false; }},
        {"loaduse", [](workloads::randprog_options& o) { o.hazard_load_use = true; }},
        {"brdense", [](workloads::randprog_options& o) { o.hazard_branch_dense = true; }},
    };
    for (const row& r : rows) {
        for (std::uint64_t seed = 1; seed <= 5; ++seed) {
            workloads::randprog_options opt = base;
            opt.seed = seed;
            r.tweak(opt);
            SCOPED_TRACE(std::string(r.name) + " seed " + std::to_string(seed));
            expect_round_trip(workloads::make_random_program(opt),
                              std::string("randprog:") + r.name);
        }
    }
}

}  // namespace
