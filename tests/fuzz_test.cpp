// Tests for the differential fuzzing subsystem (src/fuzz): deterministic
// bounded campaigns, corpus serialization/replay (including the committed
// regression corpus under tests/corpus), and the delta-debugging
// minimizer validated against deliberately broken engines.  The broken
// engines are registered into the process-wide registry, so — as in
// sim_test.cpp — every test that registers one must come after all tests
// that iterate "all registered engines".
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>

#include "fuzz/campaign.hpp"
#include "fuzz/corpus.hpp"
#include "fuzz/minimize.hpp"
#include "isa/assembler.hpp"
#include "isa/encoding.hpp"
#include "sim/registry.hpp"
#include "workloads/randprog.hpp"
#include "workloads/randprog_cli.hpp"

#ifndef OSM_CORPUS_DIR
#define OSM_CORPUS_DIR "tests/corpus"
#endif

namespace {

using namespace osm;

// Per-process scratch directory: ctest runs every discovered test in its
// own process, possibly concurrently, so fixed /tmp names would race.
std::filesystem::path scratch_dir(const std::string& tag) {
    return std::filesystem::temp_directory_path() /
           (tag + "_" + std::to_string(::getpid()));
}

fuzz::campaign_options small_campaign() {
    fuzz::campaign_options opt;
    opt.seed_lo = 1;
    opt.seed_hi = 24;
    opt.quick = true;
    opt.max_cycles = 20'000'000;
    return opt;
}

TEST(FuzzSmoke, QuickCampaignRunsCleanOnAllEngines) {
    const auto res = fuzz::run_campaign(small_campaign());
    EXPECT_TRUE(res.ok()) << (res.findings.empty()
                                  ? ""
                                  : res.findings.front().first.to_string());
    EXPECT_EQ(res.programs, 24u);
    EXPECT_GT(res.instructions, 0u);
    EXPECT_GT(res.engine_runs, res.programs);  // > 1 engine per program
    // Every quick-matrix row was exercised.
    for (const auto& row : fuzz::feature_matrix(true)) {
        EXPECT_TRUE(res.row_programs.count(row.name)) << row.name;
    }
    EXPECT_GT(res.feature_programs.at("fp"), 0u);
    EXPECT_GT(res.feature_programs.at("hazard_load_use"), 0u);
    EXPECT_GT(res.feature_programs.at("hazard_branch_dense"), 0u);
}

TEST(FuzzSmoke, CampaignSummaryIsByteIdenticalAcrossRuns) {
    const auto a = fuzz::run_campaign(small_campaign()).summary().to_json();
    const auto b = fuzz::run_campaign(small_campaign()).summary().to_json();
    EXPECT_FALSE(a.empty());
    EXPECT_EQ(a, b);
}

TEST(FuzzSmoke, ReplaysEveryCommittedCorpusArtifact) {
    const auto paths = fuzz::list_corpus(OSM_CORPUS_DIR);
    ASSERT_GE(paths.size(), 2u) << "committed corpus missing from " OSM_CORPUS_DIR;
    for (const auto& path : paths) {
        const auto rr = fuzz::replay_artifact(path);
        EXPECT_TRUE(rr.ok()) << path << ": "
                             << (rr.ok() ? ""
                                         : rr.diff.divergences.front().to_string());
        EXPECT_FALSE(rr.meta.name.empty()) << path;
        EXPECT_EQ(rr.meta.kind, "regression") << path;
        EXPECT_FALSE(rr.meta.note.empty()) << path << " metadata must say what it guards";
    }
}

TEST(FuzzSmoke, CampaignReplayDirFoldsCorpusIntoTheSweep) {
    auto opt = small_campaign();
    opt.seed_hi = 4;
    opt.replay_dir = OSM_CORPUS_DIR;
    const auto res = fuzz::run_campaign(opt);
    EXPECT_TRUE(res.ok());
    EXPECT_EQ(res.corpus_replayed, fuzz::list_corpus(OSM_CORPUS_DIR).size());
}

TEST(ImageToAsm, RoundTripsGeneratedProgramsExactly) {
    for (std::uint64_t seed : {2u, 9u, 17u}) {
        workloads::randprog_options opt;
        opt.seed = seed;
        opt.with_fp = (seed % 2) == 1;
        opt.hazard_load_use = true;
        opt.hazard_branch_dense = true;
        const auto img = workloads::make_random_program(opt);
        const auto text = fuzz::image_to_asm(img);
        const auto back = isa::assemble(text);
        ASSERT_EQ(back.segments.size(), img.segments.size()) << "seed " << seed;
        EXPECT_EQ(back.entry, img.entry);
        for (std::size_t s = 0; s < img.segments.size(); ++s) {
            EXPECT_EQ(back.segments[s].base, img.segments[s].base);
            EXPECT_EQ(back.segments[s].bytes, img.segments[s].bytes)
                << "seed " << seed << " segment " << s;
        }
    }
}

TEST(Corpus, MetadataRoundTripsThroughJson) {
    fuzz::reproducer_meta m;
    m.name = "example";
    m.kind = "fuzz";
    m.engines = "iss,smt";
    m.seed = 42;
    m.rand_options = "--rand-fp --rand-blocks 6";
    m.max_cycles = 123456;
    m.note = "a \"quoted\" note\nwith a newline";
    m.divergence = "engine smt diverges from iss: gpr[10] ...";
    const auto back = fuzz::reproducer_meta::from_json(m.to_json());
    EXPECT_EQ(back.name, m.name);
    EXPECT_EQ(back.kind, m.kind);
    EXPECT_EQ(back.engines, m.engines);
    EXPECT_EQ(back.seed, m.seed);
    EXPECT_EQ(back.rand_options, m.rand_options);
    EXPECT_EQ(back.max_cycles, m.max_cycles);
    EXPECT_EQ(back.note, m.note);
    EXPECT_EQ(back.divergence, m.divergence);
}

TEST(Corpus, SaveThenReplayFromDisk) {
    const auto dir = scratch_dir("osm_fuzz_corpus_test");
    std::filesystem::remove_all(dir);

    workloads::randprog_options opt;
    opt.seed = 11;
    fuzz::reproducer_meta meta;
    meta.name = "saved_rand_11";
    meta.engines = "iss,sarm,hw";
    meta.seed = 11;
    meta.max_cycles = 20'000'000;
    const auto path = fuzz::save_reproducer(dir.string(), meta,
                                            workloads::make_random_program(opt));
    EXPECT_TRUE(std::filesystem::exists(path));

    const auto found = fuzz::list_corpus(dir.string());
    ASSERT_EQ(found.size(), 1u);
    const auto rr = fuzz::replay_artifact(found.front());
    EXPECT_TRUE(rr.ok());
    EXPECT_EQ(rr.meta.name, "saved_rand_11");
    ASSERT_EQ(rr.diff.runs.size(), 3u);  // engine list came from metadata
    std::filesystem::remove_all(dir);
}

// ---- deliberately broken engines (KEEP these tests last: they mutate the
// ---- process-wide registry, like sim_test.cpp's bogus engine).

/// ISS wrapper whose x10 reads are corrupted once the program has printed
/// anything: a minimal reproducer must therefore preserve some console
/// output, so the minimizer has to keep the trigger alive while deleting
/// everything else.
class broken_after_print_engine final : public sim::engine {
public:
    explicit broken_after_print_engine(const sim::engine_config& cfg)
        : inner_(sim::make_engine("iss", cfg)) {}
    std::string_view name() const override { return "brk_print"; }
    void load(const isa::program_image& img) override { inner_->load(img); }
    std::uint64_t run(std::uint64_t max_cycles) override {
        return inner_->run(max_cycles);
    }
    bool halted() const override { return inner_->halted(); }
    std::uint32_t gpr(unsigned r) const override {
        const bool armed = !inner_->console().empty();
        return inner_->gpr(r) ^ ((armed && r == 10) ? 0xdead0000u : 0u);
    }
    std::uint32_t fpr(unsigned r) const override { return inner_->fpr(r); }
    std::uint32_t pc() const override { return inner_->pc(); }
    const std::string& console() const override { return inner_->console(); }
    std::uint64_t cycles() const override { return inner_->cycles(); }
    std::uint64_t retired() const override { return inner_->retired(); }
    bool models_timing() const override { return false; }

private:
    std::unique_ptr<sim::engine> inner_;
};

// Each Minimizer test registers the broken engine itself: ctest runs every
// discovered test in its own process, so registration done by one test is
// invisible to the others (add() replaces by name, so re-adding is safe).
void register_broken_engine() {
    sim::engine_registry::instance().add(
        {"brk_print", "ISS wrapper corrupting x10 after console output (test only)",
         [](const sim::engine_config& cfg) {
             return std::make_unique<broken_after_print_engine>(cfg);
         }});
}

TEST(Minimizer, ShrinksDivergentProgramToAFewInstructions) {
    register_broken_engine();

    workloads::randprog_options opt;
    opt.seed = 33;
    const auto img = workloads::make_random_program(opt);

    fuzz::minimize_options mo;
    mo.engines = {"iss", "brk_print"};
    mo.max_cycles = 2'000'000;
    const auto res = fuzz::minimize_divergence(img, mo);

    ASSERT_TRUE(res.was_divergent);
    EXPECT_EQ(res.first.engine, "brk_print");
    EXPECT_EQ(res.first.kind, "gpr");
    EXPECT_EQ(res.first.index, 10u);
    EXPECT_GT(res.original_words, 100u);
    EXPECT_LE(res.minimized_words, 10u)
        << "minimizer left " << res.minimized_words << " instructions:\n"
        << fuzz::image_to_asm(res.image);
    EXPECT_GE(res.minimized_words, 1u)
        << "an empty program prints nothing, so the corruption never arms";

    // The minimized program must still print something (the trigger).
    bool has_print = false;
    for (const auto& seg : res.image.segments) {
        for (std::size_t i = 0; i + 4 <= seg.bytes.size(); i += 4) {
            const std::uint32_t w = static_cast<std::uint32_t>(seg.bytes[i]) |
                                    static_cast<std::uint32_t>(seg.bytes[i + 1]) << 8 |
                                    static_cast<std::uint32_t>(seg.bytes[i + 2]) << 16 |
                                    static_cast<std::uint32_t>(seg.bytes[i + 3]) << 24;
            const auto di = isa::decode(w);
            if (di.code == isa::op::syscall_op && di.imm != 0) has_print = true;
        }
    }
    EXPECT_TRUE(has_print);
}

TEST(Minimizer, MinimizedReproducerSurvivesCorpusRoundTrip) {
    // End-to-end: minimize against the broken engine, persist, replay from
    // disk on the same engine pair, and check the divergence reproduces.
    register_broken_engine();
    workloads::randprog_options opt;
    opt.seed = 47;
    const auto img = workloads::make_random_program(opt);

    fuzz::minimize_options mo;
    mo.engines = {"iss", "brk_print"};
    mo.max_cycles = 2'000'000;
    const auto res = fuzz::minimize_divergence(img, mo);
    ASSERT_TRUE(res.was_divergent);

    const auto dir = scratch_dir("osm_fuzz_minimized_test");
    std::filesystem::remove_all(dir);
    fuzz::reproducer_meta meta;
    meta.name = "min_seed_47";
    meta.engines = "iss,brk_print";
    meta.seed = 47;
    meta.max_cycles = 2'000'000;
    meta.divergence = res.first.to_string();
    const auto path = fuzz::save_reproducer(dir.string(), meta, res.image);

    const auto rr = fuzz::replay_artifact(path);
    EXPECT_FALSE(rr.ok()) << "reproducer must still diverge after round-trip";
    ASSERT_FALSE(rr.diff.divergences.empty());
    EXPECT_EQ(rr.diff.divergences.front().engine, "brk_print");
    std::filesystem::remove_all(dir);
}

TEST(Minimizer, CampaignMinimizesAndPersistsItsFindings) {
    // A campaign run against a broken engine must detect, minimize and
    // save a reproducer automatically.
    register_broken_engine();
    const auto dir = scratch_dir("osm_fuzz_campaign_save_test");
    std::filesystem::remove_all(dir);

    fuzz::campaign_options opt;
    opt.seed_lo = 1;
    opt.seed_hi = 3;
    opt.engines = {"iss", "brk_print"};
    opt.max_cycles = 2'000'000;
    opt.quick = true;
    opt.save_dir = dir.string();
    const auto res = fuzz::run_campaign(opt);

    ASSERT_FALSE(res.ok());
    EXPECT_EQ(res.findings.size(), 3u);  // every program prints its checksum
    for (const auto& f : res.findings) {
        EXPECT_LE(f.minimized_words, 10u) << "seed " << f.seed;
        EXPECT_FALSE(f.artifact.empty());
        EXPECT_TRUE(std::filesystem::exists(f.artifact)) << f.artifact;
    }
    // The summary names every finding deterministically.
    const auto json = res.summary().to_json();
    EXPECT_NE(json.find("finding.000"), std::string::npos);
    EXPECT_NE(json.find("brk_print"), std::string::npos);
    std::filesystem::remove_all(dir);
}

}  // namespace
