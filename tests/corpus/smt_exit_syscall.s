; smt_exit_syscall (regression)
; PR 3 fix: a program terminated by the exit syscall (no halt opcode) must
; stop the SMT kernel.  Before the fix the exiting thread kept fetching and
; the kernel ran until the cycle budget, so halted/cycle state diverged
; from every other engine.
; replay: osm-fuzz replay smt_exit_syscall.s
        li a0, 0
        li a1, 1
        li a2, 100
loop:   add a0, a0, a1
        addi a1, a1, 1
        bge a2, a1, loop
        syscall 2
        syscall 3
        syscall 0
