; smt_jal_zero (regression)
; PR 3 fix: writes with rd == x0 must not leak into the SMT pipeline's
; thread-tagged register file.  `jal zero, target` (plain jump) wrote the
; link address into the tagged x0 entry, so later reads of x0 returned
; pc+4 instead of zero and every x0-relative value diverged.
; replay: osm-fuzz replay smt_jal_zero.s
        li a0, 7
        li a3, 5
        jal zero, over          ; jump, link discarded into x0
        addi a0, a0, 100        ; skipped
over:   add a1, zero, zero      ; a1 must be 0
        add a2, a0, zero        ; x0 must still read as zero
        jal zero, fin
        addi a2, a2, 900        ; skipped
fin:    add a0, a1, a2
        add a0, a0, a3
        syscall 2
        syscall 3
        syscall 0
