# PPC32 reproducer: a counted CTR loop whose body calls a subroutine
# (bl/mflr-free leaf, blr return) and round-trips the counter through
# big-endian memory.  Prints 5+4+3+2+1 = 15.
        .data
        .space 16
        .text 0x1000
_start:
        lis r31, 0x0010          ; data sandbox base
        li r3, 0
        li r4, 5
        mtctr r4
outer:  mfctr r10
        stw r10, 0(r31)
        bl accum
        bdnz outer
        li r0, 2
        sc
        li r0, 3
        sc
        li r0, 0
        sc
accum:  lwz r5, 0(r31)
        add r3, r3, r5
        sth r5, 8(r31)
        lha r6, 8(r31)
        blr
