# PPC32 reproducer: XER.CA producers (addic/subfic/srawi) and the
# boundedly-undefined divide edges, folded into one printed checksum.
# Kept under tests/corpus/ppc32 — the VR32 corpus replay scan is
# non-recursive, so these are replayed only by ppc32_fuzz_test.
_start:
        li r3, -1
        addic r4, r3, 1          ; 0xFFFFFFFF + 1 wraps to 0, CA=1
        subfic r5, r3, 0         ; 0 - (-1) = 1, CA=0
        srawi r6, r3, 4          ; -1 arithmetic shift, CA=1
        lis r7, 0x8000
        li r8, -1
        divw r9, r7, r8          ; INT_MIN / -1: defined as 0
        divw r10, r7, r0         ; divide by zero: defined as 0
        divwu r11, r8, r7        ; 0xFFFFFFFF / 0x80000000 = 1
        mulhwu r12, r8, r8       ; high((2^32-1)^2) = 0xFFFFFFFE
        add r3, r4, r5
        add r3, r3, r6
        add r3, r3, r9
        add r3, r3, r10
        add r3, r3, r11
        add r3, r3, r12
        li r0, 2
        sc
        li r0, 3
        sc
        li r0, 0
        sc
