# PPC32 reproducer: rlwinm rotate-and-mask extracts plus the OPCD-31
# logical/count/extend ops, checksum printed through sc.
_start:
        lis r3, 0x1234
        ori r3, r3, 0x5678
        rlwinm r4, r3, 8, 24, 31     ; rotl 8, low-byte mask
        rlwinm r5, r3, 16, 16, 31    ; halfword swap, low-half mask
        rlwinm r6, r3, 0, 0, 15      ; high-half extract
        xor r7, r4, r5
        nand r8, r6, r3
        nor r9, r7, r8
        cntlzw r10, r9
        extsb r11, r3
        extsh r12, r3
        slw r13, r3, r10
        srw r14, r3, r10
        sraw r15, r11, r10
        add r3, r4, r5
        add r3, r3, r6
        add r3, r3, r7
        add r3, r3, r8
        add r3, r3, r9
        add r3, r3, r10
        add r3, r3, r11
        add r3, r3, r12
        add r3, r3, r13
        add r3, r3, r14
        add r3, r3, r15
        li r0, 2
        sc
        li r0, 3
        sc
        li r0, 0
        sc
