// Cross-module integration: configuration sweeps over the two case-study
// models must move the performance metrics in the physically sensible
// direction while never changing architectural results.
#include <gtest/gtest.h>

#include "baseline/hardwired_sarm.hpp"
#include "mem/main_memory.hpp"
#include "ppc750/ppc750.hpp"
#include "sarm/sarm.hpp"
#include "workloads/workloads.hpp"

namespace {

using namespace osm;

std::uint64_t sarm_cycles(const workloads::workload& w, const sarm::sarm_config& cfg,
                          std::uint32_t* out_a0 = nullptr) {
    mem::main_memory m;
    sarm::sarm_model model(cfg, m);
    model.load(w.image);
    model.run(2'000'000'000ull);
    EXPECT_TRUE(model.halted()) << w.name;
    if (out_a0 != nullptr) *out_a0 = model.gpr(4);
    return model.stats().cycles;
}

std::uint64_t p750_cycles(const workloads::workload& w, const ppc750::p750_config& cfg,
                          std::uint32_t* out_a0 = nullptr) {
    mem::main_memory m;
    ppc750::p750_model model(cfg, m);
    model.load(w.image);
    model.run(2'000'000'000ull);
    EXPECT_TRUE(model.halted()) << w.name;
    if (out_a0 != nullptr) *out_a0 = model.gpr(4);
    return model.stats().cycles;
}

TEST(SweepSarm, SmallerDcacheNeverFaster) {
    const auto w = workloads::make_mpeg2_enc(1);  // memory heavy
    std::uint64_t prev = 0;
    std::uint32_t a0_ref = 0;
    for (const std::uint32_t kb : {1u, 4u, 16u}) {
        sarm::sarm_config cfg;
        cfg.dcache.size_bytes = kb * 1024;
        cfg.dcache.ways = 8;
        std::uint32_t a0 = 0;
        const auto cycles = sarm_cycles(w, cfg, &a0);
        if (prev != 0) {
            EXPECT_LE(cycles, prev) << kb << " KiB dcache slower than smaller one";
        }
        if (a0_ref == 0) a0_ref = a0;
        EXPECT_EQ(a0, a0_ref) << "cache size must not change results";
        prev = cycles;
    }
}

TEST(SweepSarm, SlowerMemoryCostsCycles) {
    const auto w = workloads::make_mpeg2_dec(1);
    sarm::sarm_config fast;
    fast.mem_latency = 4;
    sarm::sarm_config slow;
    slow.mem_latency = 40;
    EXPECT_LT(sarm_cycles(w, fast), sarm_cycles(w, slow));
}

TEST(SweepSarm, ForwardingHelpsEveryWorkload) {
    for (auto& w : workloads::mediabench_suite(1)) {
        sarm::sarm_config with;
        sarm::sarm_config without;
        without.forwarding = false;
        EXPECT_LT(sarm_cycles(w, with), sarm_cycles(w, without)) << w.name;
    }
}

TEST(SweepSarm, RestartPolicyNeverChangesTiming) {
    // Paper §5: with age ranking the Fig. 3 restart is unnecessary — and
    // harmless.  Must hold on every workload class.
    for (auto& w : workloads::mixed_suite(1)) {
        sarm::sarm_config a;
        a.director_restart = false;
        sarm::sarm_config b;
        b.director_restart = true;
        EXPECT_EQ(sarm_cycles(w, a), sarm_cycles(w, b)) << w.name;
    }
}

TEST(SweepP750, WiderDispatchNeverSlower) {
    const auto w = workloads::make_compress(1);
    std::uint64_t prev = ~0ull;
    for (const unsigned bw : {1u, 2u, 4u}) {
        ppc750::p750_config cfg;
        cfg.dispatch_bw = bw;
        cfg.fetch_bw = bw;
        cfg.retire_bw = bw;
        const auto cycles = p750_cycles(w, cfg);
        EXPECT_LE(cycles, prev) << "dispatch width " << bw;
        prev = cycles;
    }
}

TEST(SweepP750, MoreRenamesNeverSlower) {
    const auto w = workloads::make_gsm_dec(1);
    std::uint64_t prev = ~0ull;
    std::uint32_t a0_ref = 0;
    bool first = true;
    for (const unsigned renames : {2u, 4u, 8u}) {
        ppc750::p750_config cfg;
        cfg.gpr_renames = renames;
        std::uint32_t a0 = 0;
        const auto cycles = p750_cycles(w, cfg, &a0);
        EXPECT_LE(cycles, prev) << renames << " renames";
        if (first) {
            a0_ref = a0;
            first = false;
        }
        EXPECT_EQ(a0, a0_ref) << "rename count must not change results";
        prev = cycles;
    }
}

TEST(SweepP750, DeeperQueuesNeverSlower) {
    const auto w = workloads::make_sort(1);
    std::uint64_t prev = ~0ull;
    for (const unsigned depth : {2u, 4u, 6u, 12u}) {
        ppc750::p750_config cfg;
        cfg.fetch_queue = depth;
        cfg.completion_queue = depth;
        const auto cycles = p750_cycles(w, cfg);
        EXPECT_LE(cycles, prev) << "queue depth " << depth;
        prev = cycles;
    }
}

TEST(SweepP750, BiggerBhtNeverMoreMispredicts) {
    const auto w = workloads::make_g721_enc(1);
    std::uint64_t prev = ~0ull;
    for (const unsigned entries : {16u, 128u, 1024u}) {
        ppc750::p750_config cfg;
        cfg.bht_entries = entries;
        mem::main_memory m;
        ppc750::p750_model model(cfg, m);
        model.load(w.image);
        model.run(2'000'000'000ull);
        EXPECT_LE(model.stats().mispredicts, prev) << entries << "-entry BHT";
        prev = model.stats().mispredicts;
    }
}

TEST(Integration, SuperscalarBeatsScalarOnEveryWorkload) {
    for (auto& w : workloads::mixed_suite(1)) {
        const auto scalar = sarm_cycles(w, sarm::sarm_config{});
        const auto super = p750_cycles(w, ppc750::p750_config{});
        EXPECT_LT(super, scalar) << w.name;
    }
}

TEST(SweepSarm, WriteBufferHelpsStoreHeavyCode) {
    // mpeg2/enc writes coefficient blocks; with write-through caches the
    // store misses hit the bus, so a write buffer must pay off.
    const auto w = workloads::make_mpeg2_enc(1);
    sarm::sarm_config base;
    base.dcache.wpolicy = mem::write_policy::write_through;
    sarm::sarm_config buffered = base;
    buffered.write_buffer = true;
    std::uint32_t a0_a = 0;
    std::uint32_t a0_b = 0;
    const auto plain = sarm_cycles(w, base, &a0_a);
    const auto with_wb = sarm_cycles(w, buffered, &a0_b);
    EXPECT_EQ(a0_a, a0_b) << "write buffer is timing-only";
    EXPECT_LT(with_wb, plain);
}

TEST(Integration, WritePolicySweepPreservesResults) {
    const auto w = workloads::make_mpeg2_enc(1);
    std::uint32_t ref = 0;
    bool first = true;
    for (const auto policy : {mem::write_policy::write_back, mem::write_policy::write_through}) {
        for (const auto repl :
             {mem::replacement::lru, mem::replacement::fifo, mem::replacement::random_repl}) {
            sarm::sarm_config cfg;
            cfg.dcache.wpolicy = policy;
            cfg.dcache.repl = repl;
            std::uint32_t a0 = 0;
            sarm_cycles(w, cfg, &a0);
            if (first) {
                ref = a0;
                first = false;
            }
            EXPECT_EQ(a0, ref);
        }
    }
}

}  // namespace
