// VR32 ISA: encode/decode bijection (property sweep over the op space),
// per-class semantics, division/FP corner cases, ISS execution.
#include <gtest/gtest.h>

#include <bit>

#include "common/xrandom.hpp"
#include "isa/arch.hpp"
#include "isa/assembler.hpp"
#include "isa/disasm.hpp"
#include "isa/encoding.hpp"
#include "isa/iss.hpp"
#include "isa/semantics.hpp"
#include "mem/main_memory.hpp"

namespace {

using namespace osm;
using isa::decoded_inst;
using isa::op;

TEST(Arch, RegisterNamesParse) {
    EXPECT_EQ(isa::parse_gpr("x0"), 0);
    EXPECT_EQ(isa::parse_gpr("zero"), 0);
    EXPECT_EQ(isa::parse_gpr("ra"), 1);
    EXPECT_EQ(isa::parse_gpr("a0"), 4);
    EXPECT_EQ(isa::parse_gpr("t9"), 21);
    EXPECT_EQ(isa::parse_gpr("s9"), 31);
    EXPECT_EQ(isa::parse_gpr("x31"), 31);
    EXPECT_EQ(isa::parse_gpr("x32"), -1);
    EXPECT_EQ(isa::parse_gpr("f3"), -1);
    EXPECT_EQ(isa::parse_fpr("f31"), 31);
    EXPECT_EQ(isa::parse_fpr("f32"), -1);
}

// Property: encode/decode is a bijection over randomly drawn well-formed
// instructions of every opcode.
class EncodeDecode : public ::testing::TestWithParam<int> {};

decoded_inst random_inst(op c, xrandom& rng) {
    decoded_inst di;
    di.code = c;
    di.rd = static_cast<std::uint8_t>(rng.next_below(32));
    di.rs1 = static_cast<std::uint8_t>(rng.next_below(32));
    di.rs2 = static_cast<std::uint8_t>(rng.next_below(32));
    // Draw an immediate valid for this op's format.
    if (isa::is_branch(c)) {
        di.imm = static_cast<std::int32_t>(rng.next_range(-32768, 32767)) * 4;
    } else if (c == op::jal) {
        di.imm = static_cast<std::int32_t>(rng.next_range(-(1 << 20), (1 << 20) - 1)) * 4;
    } else if (c == op::lui || c == op::auipc || c == op::andi || c == op::ori ||
               c == op::xori || c == op::syscall_op) {
        di.imm = static_cast<std::int32_t>(rng.next_below(0x10000));
    } else if (c == op::halt) {
        di.imm = 0;
    } else if ((isa::uses_rs2(c) && !isa::is_store(c)) ||
               (isa::is_fp(c) && c != op::flw && c != op::fsw) ||
               isa::is_amo(c) || isa::is_fence(c)) {
        di.imm = 0;  // R format (three-register, unary FP, amo, fence)
    } else {
        di.imm = static_cast<std::int32_t>(rng.next_range(-32768, 32767));
    }
    // Normalize fields the format does not encode.
    if (!isa::writes_rd(c)) di.rd = isa::is_store(c) || isa::is_branch(c) ? 0 : di.rd;
    if (isa::is_branch(c)) di.rd = 0;
    if (isa::is_store(c)) di.rd = 0;
    if (c == op::jal || c == op::lui || c == op::auipc) di.rs1 = 0;
    if (c == op::syscall_op || c == op::halt || isa::is_fence(c)) {
        di.rd = di.rs1 = di.rs2 = 0;
    }
    if (!isa::uses_rs2(c)) di.rs2 = 0;
    return di;
}

TEST_P(EncodeDecode, RoundTripsEveryOp) {
    xrandom rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 13);
    for (int oc = 1; oc < static_cast<int>(op::count_); ++oc) {
        const op c = static_cast<op>(oc);
        const decoded_inst di = random_inst(c, rng);
        const std::uint32_t word = isa::encode(di);
        const decoded_inst back = isa::decode(word);
        EXPECT_EQ(back.code, di.code) << isa::op_name(c);
        EXPECT_EQ(back.rd, di.rd) << isa::op_name(c);
        EXPECT_EQ(back.rs1, di.rs1) << isa::op_name(c);
        EXPECT_EQ(back.rs2, di.rs2) << isa::op_name(c);
        EXPECT_EQ(back.imm, di.imm) << isa::op_name(c);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EncodeDecode, ::testing::Range(0, 16));

TEST(Decode, UnknownOpcodeIsInvalid) {
    EXPECT_EQ(isa::decode((0xFFFFFFFFu & ~(0x3Fu << 26)) | (0x30u << 26)).code,
              op::invalid);
    // Unknown funct under the integer ALU primary opcode.
    EXPECT_EQ(isa::decode(0x000007FFu).code, op::invalid);
}

isa::exec_out run1(op c, std::uint32_t a, std::uint32_t b, std::int32_t imm = 0,
                   std::uint32_t pc = 0x1000) {
    decoded_inst di;
    di.code = c;
    di.imm = imm;
    return isa::compute(di, pc, a, b);
}

TEST(Semantics, IntegerAlu) {
    EXPECT_EQ(run1(op::add_r, 2, 3).value, 5u);
    EXPECT_EQ(run1(op::sub_r, 2, 3).value, 0xFFFFFFFFu);
    EXPECT_EQ(run1(op::and_r, 0xF0F0, 0xFF00).value, 0xF000u);
    EXPECT_EQ(run1(op::nor_r, 0, 0).value, 0xFFFFFFFFu);
    EXPECT_EQ(run1(op::sll_r, 1, 33).value, 2u);  // shift amount mod 32
    EXPECT_EQ(run1(op::sra_r, 0x80000000, 31).value, 0xFFFFFFFFu);
    EXPECT_EQ(run1(op::slt_r, 0xFFFFFFFF, 0).value, 1u);   // -1 < 0
    EXPECT_EQ(run1(op::sltu_r, 0xFFFFFFFF, 0).value, 0u);  // unsigned
    EXPECT_EQ(run1(op::lui, 0, 0, 0x1234).value, 0x12340000u);
    EXPECT_EQ(run1(op::auipc, 0, 0, 0x1, 0x1000).value, 0x11000u);
}

TEST(Semantics, MultiplyDivideCornerCases) {
    EXPECT_EQ(run1(op::mul, 0x10000, 0x10000).value, 0u);
    EXPECT_EQ(run1(op::mulh, 0x80000000, 0x80000000).value, 0x40000000u);
    EXPECT_EQ(run1(op::mulhu, 0xFFFFFFFF, 0xFFFFFFFF).value, 0xFFFFFFFEu);
    // Division by zero: quotient all-ones, remainder = dividend.
    EXPECT_EQ(run1(op::div_s, 17, 0).value, 0xFFFFFFFFu);
    EXPECT_EQ(run1(op::div_u, 17, 0).value, 0xFFFFFFFFu);
    EXPECT_EQ(run1(op::rem_s, 17, 0).value, 17u);
    EXPECT_EQ(run1(op::rem_u, 17, 0).value, 17u);
    // INT_MIN / -1 overflow: quotient INT_MIN, remainder 0.
    EXPECT_EQ(run1(op::div_s, 0x80000000, 0xFFFFFFFF).value, 0x80000000u);
    EXPECT_EQ(run1(op::rem_s, 0x80000000, 0xFFFFFFFF).value, 0u);
    EXPECT_EQ(run1(op::div_s, 0xFFFFFFF9, 2).value,
              static_cast<std::uint32_t>(-3));  // -7/2 truncates toward zero
}

TEST(Semantics, BranchesAndJumps) {
    auto taken = run1(op::beq, 5, 5, 16);
    EXPECT_TRUE(taken.redirect);
    EXPECT_EQ(taken.next_pc, 0x1000u + 4 + 16);
    auto not_taken = run1(op::beq, 5, 6, 16);
    EXPECT_FALSE(not_taken.redirect);
    EXPECT_EQ(not_taken.next_pc, 0x1004u);
    EXPECT_TRUE(run1(op::blt, 0xFFFFFFFF, 0, 8).redirect);
    EXPECT_FALSE(run1(op::bltu, 0xFFFFFFFF, 0, 8).redirect);

    auto j = run1(op::jal, 0, 0, -8);
    EXPECT_TRUE(j.redirect);
    EXPECT_EQ(j.next_pc, 0x1000u + 4 - 8);
    EXPECT_EQ(j.value, 0x1004u);  // link

    auto jr = run1(op::jalr, 0x2003, 0, 1);
    EXPECT_EQ(jr.next_pc, 0x2004u & ~3u);
    EXPECT_EQ(jr.value, 0x1004u);
}

TEST(Semantics, FloatingPoint) {
    const auto f = [](float x) { return std::bit_cast<std::uint32_t>(x); };
    EXPECT_EQ(run1(op::fadd, f(1.5f), f(2.25f)).value, f(3.75f));
    EXPECT_EQ(run1(op::fmul, f(3.0f), f(-2.0f)).value, f(-6.0f));
    EXPECT_EQ(run1(op::fdiv, f(1.0f), f(4.0f)).value, f(0.25f));
    EXPECT_EQ(run1(op::fmin, f(1.0f), f(-1.0f)).value, f(-1.0f));
    EXPECT_EQ(run1(op::fabs_f, f(-8.0f), 0).value, f(8.0f));
    EXPECT_EQ(run1(op::fneg_f, f(8.0f), 0).value, f(-8.0f));
    EXPECT_EQ(run1(op::feq, f(2.0f), f(2.0f)).value, 1u);
    EXPECT_EQ(run1(op::flt_f, f(1.0f), f(2.0f)).value, 1u);
    EXPECT_EQ(run1(op::fcvt_s_w, static_cast<std::uint32_t>(-7), 0).value, f(-7.0f));
    EXPECT_EQ(run1(op::fcvt_w_s, f(-7.9f), 0).value, static_cast<std::uint32_t>(-7));
    // NaN converts saturate.
    EXPECT_EQ(run1(op::fcvt_w_s, f(std::bit_cast<float>(0x7FC00000)), 0).value,
              0x7FFFFFFFu);
    EXPECT_EQ(run1(op::fcvt_w_s, f(3e9f), 0).value, 0x7FFFFFFFu);
    EXPECT_EQ(run1(op::fcvt_w_s, f(-3e9f), 0).value, 0x80000000u);
}

TEST(Semantics, LoadStoreWidths) {
    mem::main_memory m;
    isa::do_store(op::sw, m, 0x100, 0x8899AABB);
    EXPECT_EQ(isa::do_load(op::lw, m, 0x100), 0x8899AABBu);
    EXPECT_EQ(isa::do_load(op::lb, m, 0x100), 0xFFFFFFBBu);   // sign extend
    EXPECT_EQ(isa::do_load(op::lbu, m, 0x100), 0xBBu);
    EXPECT_EQ(isa::do_load(op::lh, m, 0x102), 0xFFFF8899u);
    EXPECT_EQ(isa::do_load(op::lhu, m, 0x102), 0x8899u);
    isa::do_store(op::sb, m, 0x101, 0x11);
    EXPECT_EQ(isa::do_load(op::lw, m, 0x100), 0x889911BBu);
    isa::do_store(op::sh, m, 0x102, 0x2233);
    EXPECT_EQ(isa::do_load(op::lw, m, 0x100), 0x223311BBu);
}

TEST(Iss, X0StaysZero) {
    mem::main_memory m;
    isa::iss sim(m);
    const auto img = isa::assemble(R"(
        addi x0, x0, 55
        add a0, x0, x0
        halt
    )");
    sim.load(img);
    sim.run();
    EXPECT_EQ(sim.state().gpr[0], 0u);
    EXPECT_EQ(sim.state().gpr[4], 0u);
}

TEST(Iss, HaltsOnInvalidOpcode) {
    mem::main_memory m;
    isa::iss sim(m);
    isa::program_image img;
    img.entry = 0x1000;
    img.segments.push_back({0x1000, {0xEF, 0xBE, 0xAD, 0xDE}});  // garbage
    sim.load(img);
    sim.run();
    EXPECT_TRUE(sim.state().halted);
}

TEST(Iss, InstretCountsRetired) {
    mem::main_memory m;
    isa::iss sim(m);
    sim.load(isa::assemble("addi a0, zero, 1\naddi a1, zero, 2\nhalt\n"));
    sim.run();
    EXPECT_EQ(sim.instret(), 3u);
}

TEST(Disasm, RendersCommonForms) {
    decoded_inst di;
    di.code = op::add_r;
    di.rd = 4;
    di.rs1 = 5;
    di.rs2 = 6;
    EXPECT_EQ(isa::disassemble(di), "add x4, x5, x6");
    di = decoded_inst{};
    di.code = op::lw;
    di.rd = 4;
    di.rs1 = 2;
    di.imm = -8;
    EXPECT_EQ(isa::disassemble(di), "lw x4, -8(x2)");
    di = decoded_inst{};
    di.code = op::halt;
    EXPECT_EQ(isa::disassemble(di), "halt");
}

}  // namespace
