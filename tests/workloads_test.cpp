// Workload generators: every surrogate benchmark terminates, has the
// expected dynamic character, and is bit-deterministic.
#include <gtest/gtest.h>

#include "isa/encoding.hpp"
#include "isa/iss.hpp"
#include "mem/main_memory.hpp"
#include "workloads/randprog.hpp"
#include "workloads/workloads.hpp"

namespace {

using namespace osm;
using workloads::workload;

struct profile {
    std::uint64_t instret = 0;
    std::uint64_t mul_div = 0;
    std::uint64_t mem = 0;
    std::uint64_t branches = 0;
    std::uint64_t fp = 0;
    bool halted = false;
};

profile profile_workload(const workload& w) {
    mem::main_memory m;
    isa::iss sim(m);
    sim.load(w.image);
    profile p;
    while (!sim.state().halted && p.instret < 50'000'000) {
        const auto di = isa::decode(m.read32(sim.state().pc));
        if (isa::is_mul_div(di.code)) ++p.mul_div;
        if (isa::is_mem(di.code)) ++p.mem;
        if (isa::is_branch(di.code)) ++p.branches;
        if (isa::is_fp(di.code)) ++p.fp;
        if (!sim.step()) break;
        ++p.instret;
    }
    p.halted = sim.state().halted;
    return p;
}

class MediabenchSuite : public ::testing::TestWithParam<int> {};

TEST_P(MediabenchSuite, TerminatesWithExpectedSize) {
    const auto suite = workloads::mediabench_suite(1);
    const workload& w = suite[static_cast<std::size_t>(GetParam())];
    const profile p = profile_workload(w);
    EXPECT_TRUE(p.halted) << w.name;
    EXPECT_GT(p.instret, 100'000u) << w.name;
    EXPECT_LT(p.instret, 20'000'000u) << w.name;
    EXPECT_GT(p.branches, 1000u) << w.name;
}

INSTANTIATE_TEST_SUITE_P(AllSix, MediabenchSuite, ::testing::Range(0, 6));

TEST(Workloads, GsmIsMultiplyHeavy) {
    const profile p = profile_workload(workloads::make_gsm_dec(1));
    EXPECT_GT(static_cast<double>(p.mul_div) / static_cast<double>(p.instret), 0.03);
}

TEST(Workloads, G721IsBranchHeavy) {
    const profile p = profile_workload(workloads::make_g721_enc(1));
    EXPECT_GT(static_cast<double>(p.branches) / static_cast<double>(p.instret), 0.10);
}

TEST(Workloads, Mpeg2IsMemoryHeavy) {
    const profile p = profile_workload(workloads::make_mpeg2_dec(1));
    EXPECT_GT(static_cast<double>(p.mem) / static_cast<double>(p.instret), 0.08);
}

TEST(Workloads, FpKernelUsesFpu) {
    const profile p = profile_workload(workloads::make_fp_kernel(1));
    EXPECT_GT(p.fp, 10'000u);
}

TEST(Workloads, SpecMixTerminates) {
    for (const auto& w :
         {workloads::make_compress(1), workloads::make_dijkstra(1), workloads::make_sort(1),
          workloads::make_crc32(1), workloads::make_fft(1), workloads::make_strsearch(1)}) {
        const profile p = profile_workload(w);
        EXPECT_TRUE(p.halted) << w.name;
        EXPECT_GT(p.instret, 50'000u) << w.name;
    }
}

TEST(Workloads, Crc32IsShiftXorLoadHeavy) {
    const profile p = profile_workload(workloads::make_crc32(1));
    EXPECT_GT(static_cast<double>(p.mem) / static_cast<double>(p.instret), 0.10);
    EXPECT_LT(static_cast<double>(p.mul_div) / static_cast<double>(p.instret), 0.01);
}

TEST(Workloads, FftMixesMultiplyAndMemory) {
    const profile p = profile_workload(workloads::make_fft(1));
    EXPECT_GT(static_cast<double>(p.mul_div) / static_cast<double>(p.instret), 0.02);
    EXPECT_GT(static_cast<double>(p.mem) / static_cast<double>(p.instret), 0.10);
}

TEST(Workloads, StrsearchIsBranchy) {
    const profile p = profile_workload(workloads::make_strsearch(1));
    EXPECT_GT(static_cast<double>(p.branches) / static_cast<double>(p.instret), 0.15);
}

TEST(Workloads, ScaleGrowsWork) {
    const profile p1 = profile_workload(workloads::make_gsm_dec(1));
    const profile p2 = profile_workload(workloads::make_gsm_dec(2));
    EXPECT_GT(p2.instret, p1.instret + p1.instret / 2);
}

TEST(Workloads, DeterministicImages) {
    const auto a = workloads::make_mpeg2_enc(1);
    const auto b = workloads::make_mpeg2_enc(1);
    ASSERT_EQ(a.image.segments.size(), b.image.segments.size());
    for (std::size_t i = 0; i < a.image.segments.size(); ++i) {
        EXPECT_EQ(a.image.segments[i].bytes, b.image.segments[i].bytes);
    }
}

class RandProg : public ::testing::TestWithParam<int> {};

TEST_P(RandProg, AlwaysTerminatesAndChecksums) {
    workloads::randprog_options opt;
    opt.seed = static_cast<std::uint64_t>(GetParam()) * 1337 + 1;
    opt.with_fp = (GetParam() % 3 == 0);
    const auto img = workloads::make_random_program(opt);
    mem::main_memory m;
    isa::iss sim(m);
    sim.load(img);
    sim.run(5'000'000);
    EXPECT_TRUE(sim.state().halted) << "seed " << opt.seed;
    EXPECT_FALSE(sim.host().console().empty()) << "checksum must be printed";
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandProg, ::testing::Range(0, 25));

TEST(RandProg, DifferentSeedsDiffer) {
    workloads::randprog_options a;
    a.seed = 1;
    workloads::randprog_options b;
    b.seed = 2;
    mem::main_memory ma, mb;
    isa::iss sa(ma), sb(mb);
    sa.load(workloads::make_random_program(a));
    sb.load(workloads::make_random_program(b));
    sa.run(5'000'000);
    sb.run(5'000'000);
    EXPECT_NE(sa.host().console(), sb.host().console());
}

}  // namespace
