// Memory subsystem: functional storage, cache geometry/replacement/write
// policies (parameterized sweeps), TLB, bus timing.
#include <gtest/gtest.h>

#include "mem/bus.hpp"
#include "mem/cache.hpp"
#include "mem/main_memory.hpp"
#include "mem/tlb.hpp"
#include "mem/write_buffer.hpp"

namespace {

using namespace osm::mem;

TEST(MainMemory, ZeroFilledAndByteAddressable) {
    main_memory m;
    EXPECT_EQ(m.read32(0x1234), 0u);
    m.write8(0x1000, 0xAB);
    m.write8(0x1001, 0xCD);
    EXPECT_EQ(m.read16(0x1000), 0xCDABu);  // little endian
    m.write32(0x2000, 0x11223344);
    EXPECT_EQ(m.read8(0x2000), 0x44u);
    EXPECT_EQ(m.read8(0x2003), 0x11u);
}

TEST(MainMemory, CrossPageAccess) {
    main_memory m;
    const std::uint32_t addr = main_memory::page_size - 2;
    m.write32(addr, 0xA1B2C3D4);
    EXPECT_EQ(m.read32(addr), 0xA1B2C3D4u);
    EXPECT_EQ(m.read16(addr + 2), 0xA1B2u);
    EXPECT_EQ(m.resident_pages(), 2u);
}

TEST(MainMemory, BulkLoad) {
    main_memory m;
    const std::uint8_t data[] = {1, 2, 3, 4, 5};
    m.load(0x500, data, sizeof data);
    for (unsigned i = 0; i < 5; ++i) EXPECT_EQ(m.read8(0x500 + i), data[i]);
}

cache_config small_cache(replacement r, write_policy w) {
    cache_config c;
    c.size_bytes = 256;  // 4 sets x 2 ways x 32B lines
    c.line_bytes = 32;
    c.ways = 2;
    c.repl = r;
    c.wpolicy = w;
    c.hit_latency = 1;
    return c;
}

TEST(Cache, HitAfterMiss) {
    fixed_latency_mem lower(10);
    cache c(small_cache(replacement::lru, write_policy::write_back), lower);
    const auto first = c.access(0x100, false, 4);
    EXPECT_FALSE(first.hit);
    EXPECT_GT(first.latency, 10u);
    const auto second = c.access(0x104, false, 4);  // same line
    EXPECT_TRUE(second.hit);
    EXPECT_EQ(second.latency, 1u);
    EXPECT_EQ(c.stats().misses, 1u);
    EXPECT_EQ(c.stats().hits, 1u);
}

TEST(Cache, LruEvictsLeastRecentlyUsed) {
    fixed_latency_mem lower(10);
    cache c(small_cache(replacement::lru, write_policy::write_back), lower);
    // Set 0 lines: addresses with identical set index, different tags.
    const std::uint32_t a = 0x0000;
    const std::uint32_t b = 0x0080;  // 4 sets * 32B = 128 bytes stride
    const std::uint32_t d = 0x0100;
    c.access(a, false, 4);
    c.access(b, false, 4);
    c.access(a, false, 4);  // a is now MRU
    c.access(d, false, 4);  // evicts b
    EXPECT_TRUE(c.probe(a));
    EXPECT_FALSE(c.probe(b));
    EXPECT_TRUE(c.probe(d));
}

TEST(Cache, FifoEvictsOldestFill) {
    fixed_latency_mem lower(10);
    cache c(small_cache(replacement::fifo, write_policy::write_back), lower);
    const std::uint32_t a = 0x0000;
    const std::uint32_t b = 0x0080;
    const std::uint32_t d = 0x0100;
    c.access(a, false, 4);
    c.access(b, false, 4);
    c.access(a, false, 4);  // reuse does not refresh FIFO stamp
    c.access(d, false, 4);  // evicts a (oldest fill)
    EXPECT_FALSE(c.probe(a));
    EXPECT_TRUE(c.probe(b));
    EXPECT_TRUE(c.probe(d));
}

TEST(Cache, WriteBackDefersAndWritesBackDirty) {
    fixed_latency_mem lower(10);
    cache c(small_cache(replacement::lru, write_policy::write_back), lower);
    c.access(0x0000, true, 4);  // miss + fill, marks dirty
    EXPECT_EQ(c.stats().writebacks, 0u);
    const auto w2 = c.access(0x0004, true, 4);  // dirty hit: no lower traffic
    EXPECT_TRUE(w2.hit);
    EXPECT_EQ(w2.latency, 1u);
    // Evict the dirty line: two more tags in the same set.
    c.access(0x0080, false, 4);
    c.access(0x0100, false, 4);
    EXPECT_EQ(c.stats().writebacks, 1u);
}

TEST(Cache, WriteThroughAlwaysTouchesLower) {
    fixed_latency_mem lower(10);
    cache c(small_cache(replacement::lru, write_policy::write_through), lower);
    c.access(0x0000, true, 4);
    const auto w = c.access(0x0004, true, 4);  // hit, but write-through
    EXPECT_TRUE(w.hit);
    EXPECT_GT(w.latency, 10u);
    // Evictions never write back (nothing is dirty).
    c.access(0x0080, false, 4);
    c.access(0x0100, false, 4);
    EXPECT_EQ(c.stats().writebacks, 0u);
}

// Parameterized sweep: for every geometry, sequential access of exactly
// cache-size bytes then re-access gives 100% hits the second time.
struct geom {
    std::uint32_t size;
    std::uint32_t line;
    std::uint32_t ways;
};

class CacheGeometry : public ::testing::TestWithParam<geom> {};

TEST_P(CacheGeometry, FitsItsOwnCapacity) {
    const geom g = GetParam();
    fixed_latency_mem lower(20);
    cache_config cfg;
    cfg.size_bytes = g.size;
    cfg.line_bytes = g.line;
    cfg.ways = g.ways;
    cache c(cfg, lower);
    for (std::uint32_t a = 0; a < g.size; a += g.line) c.access(a, false, 4);
    c.reset_stats();
    for (std::uint32_t a = 0; a < g.size; a += g.line) c.access(a, false, 4);
    EXPECT_EQ(c.stats().misses, 0u) << "size=" << g.size << " line=" << g.line
                                    << " ways=" << g.ways;
    EXPECT_EQ(c.stats().hits, g.size / g.line);
}

INSTANTIATE_TEST_SUITE_P(Sweep, CacheGeometry,
                         ::testing::Values(geom{256, 16, 1}, geom{256, 16, 2},
                                           geom{512, 32, 4}, geom{1024, 32, 8},
                                           geom{4096, 64, 2}, geom{16384, 32, 32},
                                           geom{8192, 16, 8}));

TEST(Tlb, HitAfterFillAndLru) {
    tlb_config cfg;
    cfg.entries = 2;
    cfg.page_bits = 12;
    cfg.miss_penalty = 30;
    tlb t(cfg);
    EXPECT_EQ(t.translate(0x1000), 30u);
    EXPECT_EQ(t.translate(0x1FFF), 0u);  // same page
    EXPECT_EQ(t.translate(0x2000), 30u);
    EXPECT_EQ(t.translate(0x1000), 0u);   // refresh LRU
    EXPECT_EQ(t.translate(0x3000), 30u);  // evicts page 2
    EXPECT_EQ(t.translate(0x2000), 30u);
    EXPECT_EQ(t.stats().misses, 4u);
}

TEST(WriteBuffer, AbsorbsStoresUntilFull) {
    write_buffer_config cfg;
    cfg.entries = 2;
    cfg.drain_cycles = 5;
    write_buffer wb(cfg);
    EXPECT_EQ(wb.push_store(), 0u);
    EXPECT_EQ(wb.push_store(), 0u);
    EXPECT_TRUE(wb.full());
    // Third store waits for the head's remaining drain time.
    EXPECT_EQ(wb.push_store(), 5u);
    EXPECT_EQ(wb.stats().full_stalls, 1u);
}

TEST(WriteBuffer, DrainsInBackground) {
    write_buffer_config cfg;
    cfg.entries = 2;
    cfg.drain_cycles = 3;
    write_buffer wb(cfg);
    wb.push_store();
    EXPECT_EQ(wb.occupancy(), 1u);
    wb.tick();
    wb.tick();
    EXPECT_EQ(wb.occupancy(), 1u);
    wb.tick();  // third tick retires the entry
    EXPECT_EQ(wb.occupancy(), 0u);
    EXPECT_EQ(wb.stats().drained, 1u);
    // A partially drained head shortens the full-stall.
    wb.push_store();
    wb.push_store();
    wb.tick();
    EXPECT_EQ(wb.push_store(), 2u);
}

TEST(WriteBuffer, ClearDropsEntriesButKeepsStats) {
    write_buffer wb;
    wb.push_store();
    wb.tick();
    wb.clear();
    EXPECT_EQ(wb.occupancy(), 0u);
    // A squash-path flush must not erase accounting (the old behaviour
    // silently zeroed the occupancy/drain history).
    EXPECT_EQ(wb.stats().stores, 1u);
    EXPECT_EQ(wb.stats().occupancy_cycles, 1u);
    wb.reset_stats();
    EXPECT_EQ(wb.stats().stores, 0u);
    EXPECT_EQ(wb.stats().occupancy_cycles, 0u);
}

TEST(Bus, ChargesSetupAndBeats) {
    fixed_latency_mem lower(5);
    bus_config cfg;
    cfg.setup_cycles = 3;
    cfg.bytes_per_cycle = 4;
    bus b(cfg, lower);
    EXPECT_EQ(b.access(0, false, 4).latency, 3u + 1u + 5u);
    EXPECT_EQ(b.access(0, false, 32).latency, 3u + 8u + 5u);
    EXPECT_EQ(b.stats().transfers, 2u);
    EXPECT_EQ(b.stats().bytes, 36u);
}

}  // namespace
