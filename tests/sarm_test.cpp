// StrongARM-like OSM model: pipeline behaviour, hazards, and functional
// equivalence with the ISS golden model.
#include <gtest/gtest.h>

#include "isa/assembler.hpp"
#include "isa/iss.hpp"
#include "mem/main_memory.hpp"
#include "sarm/sarm.hpp"

namespace {

using namespace osm;

struct run_result {
    std::uint64_t cycles = 0;
    std::uint64_t retired = 0;
    std::array<std::uint32_t, 32> gpr{};
    std::string console;
};

run_result run_sarm(const isa::program_image& img, const sarm::sarm_config& cfg = {}) {
    mem::main_memory memory;
    sarm::sarm_model model(cfg, memory);
    model.load(img);
    const std::uint64_t cycles = model.run(2'000'000);
    EXPECT_TRUE(model.halted()) << "model did not halt";
    run_result r;
    r.cycles = cycles;
    r.retired = model.stats().retired;
    for (unsigned i = 0; i < 32; ++i) r.gpr[i] = model.gpr(i);
    r.console = model.console();
    return r;
}

run_result run_iss(const isa::program_image& img) {
    mem::main_memory memory;
    isa::iss sim(memory);
    sim.load(img);
    sim.run(10'000'000);
    EXPECT_TRUE(sim.state().halted);
    run_result r;
    r.retired = sim.instret();
    for (unsigned i = 0; i < 32; ++i) r.gpr[i] = sim.state().gpr[i];
    r.console = sim.host().console();
    return r;
}

TEST(SarmModel, StraightLineArithmeticMatchesIss) {
    const auto img = isa::assemble(R"(
        li a0, 5
        li a1, 7
        add a2, a0, a1
        sub a3, a1, a0
        mul a4, a0, a1
        halt
    )");
    const auto m = run_sarm(img);
    const auto g = run_iss(img);
    EXPECT_EQ(m.gpr[6], 12u);   // a2
    EXPECT_EQ(m.gpr[7], 2u);    // a3
    EXPECT_EQ(m.gpr[8], 35u);   // a4
    EXPECT_EQ(m.gpr, g.gpr);
}

TEST(SarmModel, PipelineFillsToDepth) {
    // Six independent instructions + halt: with a 5-deep pipeline, IPC
    // approaches 1 after the fill; cycles ≈ depth + instructions + halt
    // serialization overhead.
    const auto img = isa::assemble(R"(
        li a0, 1
        li a1, 2
        li a2, 3
        li a3, 4
        li a4, 5
        li a5, 6
        halt
    )");
    const auto m = run_sarm(img);
    EXPECT_EQ(m.retired, 7u);
    // Cold I-cache adds a miss penalty up front; steady state is 1 IPC.
    EXPECT_LT(m.cycles, 60u);
    EXPECT_GE(m.cycles, 7u + 4u);
}

TEST(SarmModel, RawHazardForwardingMatchesIss) {
    const auto img = isa::assemble(R"(
        li a0, 10
        add a1, a0, a0   ; forwarded from E
        add a2, a1, a1   ; forwarded again
        add a3, a2, a2
        halt
    )");
    const auto m = run_sarm(img);
    const auto g = run_iss(img);
    EXPECT_EQ(m.gpr[7], 80u);
    EXPECT_EQ(m.gpr, g.gpr);
}

TEST(SarmModel, ForwardingReducesCycles) {
    const auto src = R"(
        li a0, 10
        add a1, a0, a0
        add a2, a1, a1
        add a3, a2, a2
        add a4, a3, a3
        halt
    )";
    const auto img = isa::assemble(src);
    sarm::sarm_config with_fwd;
    with_fwd.forwarding = true;
    sarm::sarm_config without_fwd;
    without_fwd.forwarding = false;
    const auto fast = run_sarm(img, with_fwd);
    const auto slow = run_sarm(img, without_fwd);
    EXPECT_EQ(fast.gpr, slow.gpr);
    EXPECT_LE(fast.cycles + 8, slow.cycles)
        << "each of the 4 dependences must stall 2 extra cycles without bypass";
}

TEST(SarmModel, LoadUseHazardStallsOneCycle) {
    // Compare a load-use pair against the same pair separated by an
    // independent instruction: the former must cost at least one extra
    // cycle (load data forwards from B, not E).
    const auto tight = isa::assemble(R"(
        li t0, 0x2000
        sw t0, 0(t0)
        lw a0, 0(t0)
        add a1, a0, a0
        halt
    )");
    const auto spaced = isa::assemble(R"(
        li t0, 0x2000
        sw t0, 0(t0)
        lw a0, 0(t0)
        li a2, 1
        add a1, a0, a0
        halt
    )");
    const auto t = run_sarm(tight);
    const auto s = run_sarm(spaced);
    // `spaced` retires one more instruction yet takes no more cycles:
    // the independent op hides the load-use bubble.
    EXPECT_LE(s.cycles, t.cycles + 1);
    EXPECT_EQ(t.gpr[5], s.gpr[5]);
}

TEST(SarmModel, TakenBranchCostsBubbles) {
    // A taken branch must flush F and D (2 bubbles).
    const auto taken = isa::assemble(R"(
        li a0, 1
        beq a0, a0, target
        li a1, 111    ; squashed
        li a2, 222    ; squashed
target: li a3, 3
        halt
    )");
    const auto m = run_sarm(taken);
    const auto g = run_iss(taken);
    EXPECT_EQ(m.gpr[5], 0u);  // a1 never written
    EXPECT_EQ(m.gpr[6], 0u);  // a2 never written
    EXPECT_EQ(m.gpr[7], 3u);
    EXPECT_EQ(m.gpr, g.gpr);
}

TEST(SarmModel, LoopMatchesIssAndCounts) {
    const auto img = isa::assemble(R"(
        li a0, 0      ; sum
        li a1, 1      ; i
        li a2, 100    ; limit
loop:   add a0, a0, a1
        addi a1, a1, 1
        bge a2, a1, loop
        halt
    )");
    const auto m = run_sarm(img);
    const auto g = run_iss(img);
    EXPECT_EQ(m.gpr[4], 5050u);
    EXPECT_EQ(m.gpr, g.gpr);
    EXPECT_EQ(m.retired, g.retired);
}

TEST(SarmModel, MultiplyOccupiesExecuteStage) {
    // Back-to-back independent multiplies serialize on the multiplier.
    const auto muls = isa::assemble(R"(
        li a0, 3
        li a1, 4
        mul a2, a0, a1
        mul a3, a0, a1
        mul a4, a0, a1
        halt
    )");
    const auto adds = isa::assemble(R"(
        li a0, 3
        li a1, 4
        add a2, a0, a1
        add a3, a0, a1
        add a4, a0, a1
        halt
    )");
    const auto m = run_sarm(muls);
    const auto a = run_sarm(adds);
    EXPECT_EQ(m.gpr[6], 12u);
    EXPECT_GE(m.cycles, a.cycles + 2 * 2)
        << "each extra multiply should add its latency";
}

TEST(SarmModel, SyscallConsoleMatchesIss) {
    const auto img = isa::assemble(R"(
        li a0, 72      ; 'H'
        syscall 1
        li a0, 105     ; 'i'
        syscall 1
        li a0, 42
        syscall 2
        syscall 3
        syscall 0
    )");
    const auto m = run_sarm(img);
    const auto g = run_iss(img);
    EXPECT_EQ(m.console, "Hi42\n");
    EXPECT_EQ(m.console, g.console);
}

TEST(SarmModel, MemoryKernelMatchesIss) {
    // Store an array, then sum it via loads.
    const auto img = isa::assemble(R"(
        li t0, 0x4000   ; base
        li t1, 0        ; i
        li t2, 16       ; n
init:   slli t3, t1, 2
        add t3, t3, t0
        sw t1, 0(t3)
        addi t1, t1, 1
        blt t1, t2, init
        li a0, 0
        li t1, 0
sum:    slli t3, t1, 2
        add t3, t3, t0
        lw t4, 0(t3)
        add a0, a0, t4
        addi t1, t1, 1
        blt t1, t2, sum
        halt
    )");
    const auto m = run_sarm(img);
    const auto g = run_iss(img);
    EXPECT_EQ(m.gpr[4], 120u);  // 0+1+...+15
    EXPECT_EQ(m.gpr, g.gpr);
}

}  // namespace
