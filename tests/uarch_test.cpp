// Micro-architecture component library: scoreboarded register file,
// rename buffers, in-order queues, reset manager, branch predictors.
#include <gtest/gtest.h>

#include "core/osm.hpp"
#include "core/osm_graph.hpp"
#include "uarch/inorder_queue.hpp"
#include "uarch/predictor.hpp"
#include "uarch/register_file.hpp"
#include "uarch/rename.hpp"
#include "uarch/reset.hpp"

namespace {

using namespace osm;
using osm_t = osm::core::osm;

using core::osm_graph;
using uarch::reg_update_ident;
using uarch::reg_value_ident;

struct fixture {
    osm_graph g{"f"};
    fixture() {
        g.add_state("I");
        g.finalize();
    }
};

TEST(RegisterFile, ScoreboardBlocksReadersUntilRelease) {
    fixture f;
    osm_t w(f.g, "w");
    osm_t r(f.g, "r");
    uarch::register_file_manager rf("rf", 32, true, /*forwarding=*/false);

    EXPECT_TRUE(rf.inquire(reg_value_ident(5), r));
    EXPECT_TRUE(rf.can_allocate(reg_update_ident(5), w));
    rf.do_allocate(reg_update_ident(5), w);
    EXPECT_FALSE(rf.inquire(reg_value_ident(5), r));  // pending writer
    EXPECT_FALSE(rf.can_allocate(reg_update_ident(5), r));  // single writer

    rf.publish(5, 77);
    EXPECT_FALSE(rf.inquire(reg_value_ident(5), r));  // no forwarding
    EXPECT_TRUE(rf.can_release(reg_update_ident(5), w));
    rf.do_release(reg_update_ident(5), w);
    EXPECT_TRUE(rf.inquire(reg_value_ident(5), r));
    EXPECT_EQ(rf.arch_read(5), 77u);
    EXPECT_EQ(rf.read(5), 77u);
}

TEST(RegisterFile, ForwardingBypassesAfterPublish) {
    fixture f;
    osm_t w(f.g, "w");
    osm_t r(f.g, "r");
    uarch::register_file_manager rf("rf", 32, true, /*forwarding=*/true);
    rf.do_allocate(reg_update_ident(9), w);
    EXPECT_FALSE(rf.inquire(reg_value_ident(9), r));
    rf.publish(9, 123);
    EXPECT_TRUE(rf.inquire(reg_value_ident(9), r));  // bypass network
    EXPECT_EQ(rf.read(9), 123u);
    EXPECT_EQ(rf.arch_read(9), 0u);  // not yet committed
}

TEST(RegisterFile, X0IsImmutable) {
    fixture f;
    osm_t w(f.g, "w");
    uarch::register_file_manager rf("rf", 32, true, true);
    EXPECT_TRUE(rf.can_allocate(reg_update_ident(0), w));  // never conflicts
    rf.do_allocate(reg_update_ident(0), w);
    rf.publish(0, 55);
    rf.do_release(reg_update_ident(0), w);
    EXPECT_EQ(rf.arch_read(0), 0u);
    EXPECT_EQ(rf.read(0), 0u);
}

TEST(RegisterFile, DiscardDropsPendingUpdate) {
    fixture f;
    osm_t w(f.g, "w");
    osm_t r(f.g, "r");
    uarch::register_file_manager rf("rf", 32, true, true);
    rf.do_allocate(reg_update_ident(3), w);
    rf.publish(3, 99);
    rf.discard(reg_update_ident(3), w);
    EXPECT_TRUE(rf.inquire(reg_value_ident(3), r));
    EXPECT_EQ(rf.arch_read(3), 0u);  // squashed, never committed
}

TEST(Rename, CaptureTracksSpecificProducer) {
    fixture f;
    osm_t w1(f.g, "w1");
    osm_t w2(f.g, "w2");
    osm_t r(f.g, "r");
    uarch::rename_manager rn("rn", 32, 4, true);

    rn.do_allocate(reg_update_ident(7), w1);
    const auto dep = rn.capture(7, &r);
    EXPECT_TRUE(uarch::rename_manager::ident_is_entry(dep));
    EXPECT_FALSE(rn.inquire(dep, r));

    // A *younger* writer dispatches; the captured dependency is unaffected.
    rn.do_allocate(reg_update_ident(7), w2);
    rn.publish(7, w2, 222);
    EXPECT_FALSE(rn.inquire(dep, r)) << "captured producer not yet published";

    rn.publish(7, w1, 111);
    EXPECT_TRUE(rn.inquire(dep, r));
    EXPECT_EQ(rn.read(dep, 7, &r), 111u) << "must read w1's value, not w2's";
}

TEST(Rename, ArchFinalCaptureIgnoresLaterWriters) {
    fixture f;
    osm_t w(f.g, "w");
    osm_t r(f.g, "r");
    uarch::rename_manager rn("rn", 32, 4, true);
    rn.arch_write(6, 42);

    const auto dep = rn.capture(6, &r);  // no outstanding writer
    EXPECT_TRUE(rn.inquire(dep, r));
    // A younger writer appears and even publishes.
    rn.do_allocate(reg_update_ident(6), w);
    rn.publish(6, w, 1000);
    EXPECT_TRUE(rn.inquire(dep, r));
    EXPECT_EQ(rn.read(dep, 6, &r), 42u) << "arch-final capture must not see w";
}

TEST(Rename, InOrderCommitPerRegister) {
    fixture f;
    osm_t w1(f.g, "w1");
    osm_t w2(f.g, "w2");
    uarch::rename_manager rn("rn", 32, 4, true);
    rn.do_allocate(reg_update_ident(4), w1);
    rn.do_allocate(reg_update_ident(4), w2);
    rn.publish(4, w1, 10);
    rn.publish(4, w2, 20);
    EXPECT_FALSE(rn.can_release(reg_update_ident(4), w2)) << "w2 is younger";
    EXPECT_TRUE(rn.can_release(reg_update_ident(4), w1));
    rn.do_release(reg_update_ident(4), w1);
    EXPECT_EQ(rn.arch_read(4), 10u);
    EXPECT_TRUE(rn.can_release(reg_update_ident(4), w2));
    rn.do_release(reg_update_ident(4), w2);
    EXPECT_EQ(rn.arch_read(4), 20u);
}

TEST(Rename, PoolExhaustionBlocksAllocate) {
    fixture f;
    osm_t w1(f.g, "w1");
    osm_t w2(f.g, "w2");
    osm_t w3(f.g, "w3");
    uarch::rename_manager rn("rn", 32, 2, true);
    rn.do_allocate(reg_update_ident(1), w1);
    rn.do_allocate(reg_update_ident(2), w2);
    EXPECT_FALSE(rn.can_allocate(reg_update_ident(3), w3));
    EXPECT_EQ(rn.buffers_in_use(), 2u);
    rn.do_release(reg_update_ident(1), w1);
    EXPECT_TRUE(rn.can_allocate(reg_update_ident(3), w3));
}

TEST(Rename, SquashDiscardRestoresOlderValue) {
    fixture f;
    osm_t w1(f.g, "w1");
    osm_t w2(f.g, "w2");
    osm_t r(f.g, "r");
    uarch::rename_manager rn("rn", 32, 4, true);
    rn.do_allocate(reg_update_ident(8), w1);
    rn.publish(8, w1, 5);
    rn.do_allocate(reg_update_ident(8), w2);
    rn.publish(8, w2, 6);
    // Squash the younger writer.
    rn.discard(reg_update_ident(8), w2);
    const auto dep = rn.capture(8, &r);
    EXPECT_TRUE(rn.inquire(dep, r));
    EXPECT_EQ(rn.read(dep, 8, &r), 5u);
    EXPECT_EQ(rn.writers_of(8), 1u);
}

TEST(InorderQueue, HeadOnlyReleaseAndBandwidth) {
    fixture f;
    osm_t a(f.g, "a");
    osm_t b(f.g, "b");
    osm_t c(f.g, "c");
    uarch::inorder_queue_manager q("q", 4, /*alloc_bw=*/2, /*release_bw=*/1);

    EXPECT_TRUE(q.can_allocate(0, a));
    q.do_allocate(0, a);
    q.do_allocate(0, b);
    EXPECT_FALSE(q.can_allocate(0, c)) << "alloc bandwidth spent";
    q.tick();
    q.do_allocate(0, c);
    EXPECT_EQ(q.size(), 3u);

    EXPECT_FALSE(q.can_release(0, b)) << "not the head";
    EXPECT_TRUE(q.can_release(0, a));
    q.do_release(0, a);
    EXPECT_FALSE(q.can_release(0, b)) << "release bandwidth spent";
    q.tick();
    EXPECT_TRUE(q.can_release(0, b));
    EXPECT_EQ(q.position_of(c), 1);
}

TEST(InorderQueue, DiscardRemovesFromMiddle) {
    fixture f;
    osm_t a(f.g, "a");
    osm_t b(f.g, "b");
    osm_t c(f.g, "c");
    uarch::inorder_queue_manager q("q", 4);
    q.do_allocate(0, a);
    q.do_allocate(0, b);
    q.do_allocate(0, c);
    q.discard(0, b);
    EXPECT_EQ(q.size(), 2u);
    EXPECT_EQ(q.head(), &a);
    EXPECT_EQ(q.position_of(c), 1);
}

TEST(InorderQueue, AllocBlackout) {
    fixture f;
    osm_t a(f.g, "a");
    uarch::inorder_queue_manager q("q", 4);
    q.block_alloc_for(2);
    EXPECT_FALSE(q.can_allocate(0, a));
    q.tick();
    EXPECT_FALSE(q.can_allocate(0, a));
    q.tick();
    EXPECT_TRUE(q.can_allocate(0, a));
}

TEST(ResetManager, OnlyVictimsPassInquiry) {
    fixture f;
    osm_t normal(f.g, "normal");
    osm_t victim(f.g, "victim");
    uarch::reset_manager rm("rm");
    EXPECT_FALSE(rm.inquire(0, victim)) << "disarmed: reject everyone";
    rm.arm([&](const osm_t& m) { return &m == &victim; });
    EXPECT_FALSE(rm.inquire(0, normal));
    EXPECT_TRUE(rm.inquire(0, victim));
    EXPECT_EQ(rm.kills(), 1u);
    rm.disarm();
    EXPECT_FALSE(rm.inquire(0, victim));
}

TEST(Bht, SaturatingCountersLearn) {
    uarch::bht b(16);
    const std::uint32_t pc = 0x1000;
    EXPECT_FALSE(b.predict(pc));  // weakly not-taken
    b.update(pc, true);
    EXPECT_TRUE(b.predict(pc));
    b.update(pc, true);
    b.update(pc, true);  // saturate
    b.update(pc, false);
    EXPECT_TRUE(b.predict(pc)) << "one not-taken should not flip a strong counter";
    b.update(pc, false);
    b.update(pc, false);
    EXPECT_FALSE(b.predict(pc));
}

TEST(Bht, IndexingSeparatesBranches) {
    uarch::bht b(16);
    b.update(0x1000, true);
    b.update(0x1000, true);
    EXPECT_TRUE(b.predict(0x1000));
    EXPECT_FALSE(b.predict(0x1004)) << "different slot";
}

TEST(Btic, TagsPreventAliasedHits) {
    uarch::btic t(16);
    EXPECT_FALSE(t.lookup(0x1000).has_value());
    t.insert(0x1000, 0x2000);
    EXPECT_EQ(t.lookup(0x1000).value(), 0x2000u);
    // Same index (16 entries * 4B granuarity = 64B stride), different tag.
    EXPECT_FALSE(t.lookup(0x1040).has_value());
    t.insert(0x1040, 0x3000);
    EXPECT_FALSE(t.lookup(0x1000).has_value()) << "direct-mapped eviction";
}

}  // namespace
