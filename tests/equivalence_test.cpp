// Cross-engine equivalence property tests: random programs executed on the
// ISS, the OSM SARM model, the hardwired baseline, the OSM P750 model and
// the port/wire model must produce identical final architectural state and
// console output; the independently-implemented pairs must also agree on
// timing within the paper's few-percent tolerance (structured kernels agree
// exactly — see baseline_test — while mispredict-heavy random programs
// expose wrong-path fetch accounting differences, the paper's error class).
#include <gtest/gtest.h>

#include <utility>

#include "baseline/hardwired_sarm.hpp"
#include "baseline/port_ppc.hpp"
#include "isa/iss.hpp"
#include "mem/main_memory.hpp"
#include "ppc750/ppc750.hpp"
#include "sarm/sarm.hpp"
#include "workloads/randprog.hpp"

namespace {

using namespace osm;

struct final_state {
    std::array<std::uint32_t, 32> gpr{};
    std::array<std::uint32_t, 32> fpr{};
    std::string console;
    std::uint64_t retired = 0;
    std::uint64_t cycles = 0;
    bool halted = false;
};

final_state run_iss(const isa::program_image& img, bool dcache = true) {
    mem::main_memory m;
    isa::iss sim(m, dcache);
    sim.load(img);
    sim.run(50'000'000);
    final_state f;
    f.gpr = sim.state().gpr;
    f.fpr = sim.state().fpr;
    f.console = sim.host().console();
    f.retired = sim.instret();
    f.halted = sim.state().halted;
    return f;
}

final_state run_sarm(const isa::program_image& img, bool dcache = true) {
    mem::main_memory m;
    sarm::sarm_config cfg;
    cfg.decode_cache = dcache;
    sarm::sarm_model sim(cfg, m);
    sim.load(img);
    sim.run(100'000'000);
    final_state f;
    for (unsigned r = 0; r < 32; ++r) {
        f.gpr[r] = sim.gpr(r);
        f.fpr[r] = sim.fpr(r);
    }
    f.console = sim.console();
    f.retired = sim.stats().retired;
    f.cycles = sim.stats().cycles;
    f.halted = sim.halted();
    return f;
}

final_state run_hw(const isa::program_image& img, bool dcache = true) {
    mem::main_memory m;
    sarm::sarm_config cfg;
    cfg.decode_cache = dcache;
    baseline::hardwired_sarm sim(cfg, m);
    sim.load(img);
    sim.run(100'000'000);
    final_state f;
    for (unsigned r = 0; r < 32; ++r) {
        f.gpr[r] = sim.gpr(r);
        f.fpr[r] = sim.fpr(r);
    }
    f.console = sim.console();
    f.retired = sim.retired();
    f.cycles = sim.cycles();
    f.halted = sim.halted();
    return f;
}

final_state run_p750(const isa::program_image& img, bool dcache = true) {
    mem::main_memory m;
    ppc750::p750_config cfg;
    cfg.decode_cache = dcache;
    ppc750::p750_model sim(cfg, m);
    sim.load(img);
    sim.run(100'000'000);
    final_state f;
    for (unsigned r = 0; r < 32; ++r) {
        f.gpr[r] = sim.gpr(r);
        f.fpr[r] = sim.fpr(r);
    }
    f.console = sim.console();
    f.retired = sim.stats().retired;
    f.cycles = sim.stats().cycles;
    f.halted = sim.halted();
    return f;
}

final_state run_port(const isa::program_image& img, bool dcache = true) {
    mem::main_memory m;
    ppc750::p750_config cfg;
    cfg.decode_cache = dcache;
    baseline::port_ppc sim(cfg, m);
    sim.load(img);
    sim.run(100'000'000);
    final_state f;
    for (unsigned r = 0; r < 32; ++r) {
        f.gpr[r] = sim.gpr(r);
        f.fpr[r] = sim.fpr(r);
    }
    f.console = sim.console();
    f.retired = sim.stats().retired;
    f.cycles = sim.stats().cycles;
    f.halted = sim.halted();
    return f;
}

void expect_arch_equal(const final_state& a, const final_state& b,
                       const char* engine, std::uint64_t seed) {
    EXPECT_TRUE(b.halted) << engine << " seed=" << seed;
    for (unsigned r = 0; r < 32; ++r) {
        EXPECT_EQ(a.gpr[r], b.gpr[r]) << engine << " x" << r << " seed=" << seed;
        EXPECT_EQ(a.fpr[r], b.fpr[r]) << engine << " f" << r << " seed=" << seed;
    }
    EXPECT_EQ(a.console, b.console) << engine << " seed=" << seed;
    EXPECT_EQ(a.retired, b.retired) << engine << " seed=" << seed;
}

class RandomEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(RandomEquivalence, AllEnginesAgree) {
    workloads::randprog_options opt;
    opt.seed = static_cast<std::uint64_t>(GetParam()) * 2654435761u + 17;
    opt.blocks = 14;
    opt.block_len = 12;
    opt.with_fp = (GetParam() % 2 == 0);
    const auto img = workloads::make_random_program(opt);

    const auto ref = run_iss(img);
    ASSERT_TRUE(ref.halted) << "seed " << opt.seed;

    const auto s = run_sarm(img);
    expect_arch_equal(ref, s, "sarm", opt.seed);
    const auto h = run_hw(img);
    expect_arch_equal(ref, h, "hardwired", opt.seed);
    const auto p = run_p750(img);
    expect_arch_equal(ref, p, "p750", opt.seed);
    const auto q = run_port(img);
    expect_arch_equal(ref, q, "port", opt.seed);

    // Timing agreement between independent implementations.  Random
    // programs are branch-mispredict heavy and the two implementations
    // interpret wrong-path fetch cache side effects slightly differently
    // (the paper's own comparisons carry the same class of residual), so
    // the bound here is the paper's few-percent tolerance; structured
    // kernels agree exactly (see baseline_test).
    const double sdiff =
        std::abs(static_cast<double>(s.cycles) - static_cast<double>(h.cycles)) /
        static_cast<double>(h.cycles);
    EXPECT_LT(sdiff, 0.05) << "sarm " << s.cycles << " vs hardwired "
                           << h.cycles << ", seed " << opt.seed;
    const double diff =
        std::abs(static_cast<double>(p.cycles) - static_cast<double>(q.cycles)) /
        static_cast<double>(q.cycles);
    EXPECT_LT(diff, 0.03) << "p750 " << p.cycles << " vs port " << q.cycles
                          << ", seed " << opt.seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomEquivalence, ::testing::Range(0, 20));

// The decode cache is a pure host-side optimization: every engine must
// produce *bit-identical* results — architectural state, console, retired
// count AND cycle count — with the cache on and off.  A cycle divergence
// here would mean the cache leaked into simulated timing.
TEST(DecodeCacheAblation, BitIdenticalOnAndOff) {
    for (int i = 0; i < 6; ++i) {
        workloads::randprog_options opt;
        opt.seed = 4200u + static_cast<unsigned>(i);
        opt.blocks = 10;
        opt.block_len = 10;
        opt.with_fp = (i % 2 == 0);
        const auto img = workloads::make_random_program(opt);

        const auto pairs = {
            std::pair{run_iss(img, true), run_iss(img, false)},
            std::pair{run_sarm(img, true), run_sarm(img, false)},
            std::pair{run_hw(img, true), run_hw(img, false)},
            std::pair{run_p750(img, true), run_p750(img, false)},
            std::pair{run_port(img, true), run_port(img, false)},
        };
        for (const auto& [on, off] : pairs) {
            expect_arch_equal(on, off, "decode-cache off", opt.seed);
            EXPECT_EQ(on.cycles, off.cycles) << "seed " << opt.seed;
        }
    }
}

TEST(RandomEquivalence, LoopHeavyPrograms) {
    for (int i = 0; i < 5; ++i) {
        workloads::randprog_options opt;
        opt.seed = 9000u + static_cast<unsigned>(i);
        opt.blocks = 8;
        opt.block_len = 6;
        opt.loop_count = 12;
        const auto img = workloads::make_random_program(opt);
        const auto ref = run_iss(img);
        const auto p = run_p750(img);
        expect_arch_equal(ref, p, "p750", opt.seed);
    }
}

}  // namespace
