// Cross-engine equivalence property tests: random programs executed on
// every engine in the sim::engine registry must produce identical final
// architectural state and console output; the independently-implemented
// pairs must also agree on timing within the paper's few-percent tolerance
// (structured kernels agree exactly — see baseline_test — while
// mispredict-heavy random programs expose wrong-path fetch accounting
// differences, the paper's error class).
//
// The harness is registry-driven: a new engine registered with
// sim::engine_registry is cross-checked against the ISS here with no test
// changes.
#include <gtest/gtest.h>

#include <map>
#include <string>

#include "sim/engine.hpp"
#include "sim/registry.hpp"
#include "workloads/randprog.hpp"

namespace {

using namespace osm;

struct final_state {
    std::array<std::uint32_t, 32> gpr{};
    std::array<std::uint32_t, 32> fpr{};
    std::string console;
    std::uint64_t retired = 0;
    std::uint64_t cycles = 0;
    bool halted = false;
    bool fp = true;  ///< engine executes the FP register file
};

final_state run_engine_cfg(const std::string& name, const isa::program_image& img,
                           const sim::engine_config& cfg) {
    auto sim = sim::make_engine(name, cfg);
    sim->load(img);
    sim->run(100'000'000);
    final_state f;
    for (unsigned r = 0; r < 32; ++r) {
        f.gpr[r] = sim->gpr(r);
        f.fpr[r] = sim->fpr(r);
    }
    f.console = sim->console();
    f.retired = sim->retired();
    f.cycles = sim->cycles();
    f.halted = sim->halted();
    f.fp = sim->executes_fp();
    return f;
}

final_state run_engine(const std::string& name, const isa::program_image& img,
                       bool dcache = true) {
    sim::engine_config cfg;
    cfg.decode_cache = dcache;
    return run_engine_cfg(name, img, cfg);
}

void expect_arch_equal(const final_state& a, const final_state& b,
                       const std::string& engine, std::uint64_t seed) {
    EXPECT_TRUE(b.halted) << engine << " seed=" << seed;
    for (unsigned r = 0; r < 32; ++r) {
        EXPECT_EQ(a.gpr[r], b.gpr[r]) << engine << " x" << r << " seed=" << seed;
        if (a.fp && b.fp) {
            EXPECT_EQ(a.fpr[r], b.fpr[r])
                << engine << " f" << r << " seed=" << seed;
        }
    }
    EXPECT_EQ(a.console, b.console) << engine << " seed=" << seed;
    EXPECT_EQ(a.retired, b.retired) << engine << " seed=" << seed;
}

class RandomEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(RandomEquivalence, AllEnginesAgree) {
    workloads::randprog_options opt;
    opt.seed = static_cast<std::uint64_t>(GetParam()) * 2654435761u + 17;
    opt.blocks = 14;
    opt.block_len = 12;
    opt.with_fp = (GetParam() % 2 == 0);
    const auto img = workloads::make_random_program(opt);

    const auto ref = run_engine("iss", img);
    ASSERT_TRUE(ref.halted) << "seed " << opt.seed;

    // Every registered VR32 engine — including any added after this test
    // was written — is cross-checked against the ISS.  Integer-only
    // engines (executes_fp() == false) sit out FP programs.  (Other-ISA
    // engines run other programs: see ppc32_fuzz_test.)
    std::map<std::string, final_state> results;
    for (const auto& name : sim::engine_registry::instance().names_for_isa("vr32")) {
        if (name == "iss") continue;
        if (opt.with_fp && !sim::make_engine(name)->executes_fp()) continue;
        const auto f = run_engine(name, img);
        expect_arch_equal(ref, f, name, opt.seed);
        results.emplace(name, f);
    }

    // Timing agreement between independent implementations.  Random
    // programs are branch-mispredict heavy and the two implementations
    // interpret wrong-path fetch cache side effects slightly differently
    // (the paper's own comparisons carry the same class of residual), so
    // the bound here is the paper's few-percent tolerance; structured
    // kernels agree exactly (see baseline_test).
    const auto& s = results.at("sarm");
    const auto& h = results.at("hw");
    const double sdiff =
        std::abs(static_cast<double>(s.cycles) - static_cast<double>(h.cycles)) /
        static_cast<double>(h.cycles);
    EXPECT_LT(sdiff, 0.05) << "sarm " << s.cycles << " vs hardwired "
                           << h.cycles << ", seed " << opt.seed;
    const auto& p = results.at("p750");
    const auto& q = results.at("port");
    const double diff =
        std::abs(static_cast<double>(p.cycles) - static_cast<double>(q.cycles)) /
        static_cast<double>(q.cycles);
    EXPECT_LT(diff, 0.03) << "p750 " << p.cycles << " vs port " << q.cycles
                          << ", seed " << opt.seed;

    // The ADL-elaborated SARM is the same machine description in OSM-DL
    // text form: it must match the C++ OSM SARM cycle-for-cycle.
    EXPECT_EQ(results.at("adl").cycles, s.cycles) << "seed " << opt.seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomEquivalence, ::testing::Range(0, 20));

// The decode cache is a pure host-side optimization: every registered
// engine must produce *bit-identical* results — architectural state,
// console, retired count AND cycle count — with the cache on and off.  A
// cycle divergence here would mean the cache leaked into simulated timing.
TEST(DecodeCacheAblation, BitIdenticalOnAndOff) {
    for (int i = 0; i < 6; ++i) {
        workloads::randprog_options opt;
        opt.seed = 4200u + static_cast<unsigned>(i);
        opt.blocks = 10;
        opt.block_len = 10;
        opt.with_fp = (i % 2 == 0);
        const auto img = workloads::make_random_program(opt);

        for (const auto& name : sim::engine_registry::instance().names_for_isa("vr32")) {
            if (opt.with_fp && !sim::make_engine(name)->executes_fp()) continue;
            const auto on = run_engine(name, img, true);
            const auto off = run_engine(name, img, false);
            expect_arch_equal(on, off, name + " decode-cache off", opt.seed);
            EXPECT_EQ(on.cycles, off.cycles) << name << " seed " << opt.seed;
        }
    }
}

// The block cache is, like the decode cache, a pure host-side
// optimization: every registered engine must produce *bit-identical*
// results — architectural state, console, retired count AND cycle count —
// with it on and off.  Only the ISS actually dispatches translated blocks
// today, but the ablation sweeps the whole registry so an engine that
// later adopts the block cache inherits the invariant for free.
TEST(BlockCacheAblation, BitIdenticalOnAndOff) {
    for (int i = 0; i < 6; ++i) {
        workloads::randprog_options opt;
        opt.seed = 6200u + static_cast<unsigned>(i);
        opt.blocks = 10;
        opt.block_len = 10;
        opt.with_fp = (i % 2 == 0);
        const auto img = workloads::make_random_program(opt);

        for (const auto& name : sim::engine_registry::instance().names_for_isa("vr32")) {
            if (opt.with_fp && !sim::make_engine(name)->executes_fp()) continue;
            sim::engine_config cfg;
            cfg.block_cache = true;
            const auto on = run_engine_cfg(name, img, cfg);
            cfg.block_cache = false;
            const auto off = run_engine_cfg(name, img, cfg);
            expect_arch_equal(on, off, name + " block-cache off", opt.seed);
            EXPECT_EQ(on.cycles, off.cycles) << name << " seed " << opt.seed;
        }
    }
}

// Director batching (the blocked-OSM skip memo) must be invisible in both
// architectural state and cycle counts on every OSM-director engine: a
// cycle divergence would mean a skipped visit could actually have fired,
// i.e. a generation/touch() hole in some token manager.
TEST(DirectorBatchAblation, BitIdenticalOnAndOff) {
    for (int i = 0; i < 6; ++i) {
        workloads::randprog_options opt;
        opt.seed = 7300u + static_cast<unsigned>(i);
        opt.blocks = 10;
        opt.block_len = 10;
        opt.with_fp = (i % 2 == 0);
        const auto img = workloads::make_random_program(opt);

        for (const auto& name : sim::engine_registry::instance().names_for_isa("vr32")) {
            if (opt.with_fp && !sim::make_engine(name)->executes_fp()) continue;
            sim::engine_config cfg;
            cfg.director_batch = true;
            const auto on = run_engine_cfg(name, img, cfg);
            cfg.director_batch = false;
            const auto off = run_engine_cfg(name, img, cfg);
            expect_arch_equal(on, off, name + " director-batch off", opt.seed);
            EXPECT_EQ(on.cycles, off.cycles) << name << " seed " << opt.seed;
        }
    }
}

TEST(RandomEquivalence, LoopHeavyPrograms) {
    for (int i = 0; i < 5; ++i) {
        workloads::randprog_options opt;
        opt.seed = 9000u + static_cast<unsigned>(i);
        opt.blocks = 8;
        opt.block_len = 6;
        opt.loop_count = 12;
        const auto img = workloads::make_random_program(opt);
        const auto ref = run_engine("iss", img);
        const auto p = run_engine("p750", img);
        expect_arch_equal(ref, p, "p750", opt.seed);
    }
}

}  // namespace
