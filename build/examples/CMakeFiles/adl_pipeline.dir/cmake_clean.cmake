file(REMOVE_RECURSE
  "CMakeFiles/adl_pipeline.dir/adl_pipeline.cpp.o"
  "CMakeFiles/adl_pipeline.dir/adl_pipeline.cpp.o.d"
  "adl_pipeline"
  "adl_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adl_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
