# Empty compiler generated dependencies file for adl_pipeline.
# This may be replaced when dependencies are built.
