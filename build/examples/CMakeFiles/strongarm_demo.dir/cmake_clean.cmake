file(REMOVE_RECURSE
  "CMakeFiles/strongarm_demo.dir/strongarm_demo.cpp.o"
  "CMakeFiles/strongarm_demo.dir/strongarm_demo.cpp.o.d"
  "strongarm_demo"
  "strongarm_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/strongarm_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
