# Empty compiler generated dependencies file for strongarm_demo.
# This may be replaced when dependencies are built.
