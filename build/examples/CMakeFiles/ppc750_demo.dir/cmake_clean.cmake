file(REMOVE_RECURSE
  "CMakeFiles/ppc750_demo.dir/ppc750_demo.cpp.o"
  "CMakeFiles/ppc750_demo.dir/ppc750_demo.cpp.o.d"
  "ppc750_demo"
  "ppc750_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppc750_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
