# Empty dependencies file for ppc750_demo.
# This may be replaced when dependencies are built.
