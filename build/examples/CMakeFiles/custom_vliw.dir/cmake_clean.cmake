file(REMOVE_RECURSE
  "CMakeFiles/custom_vliw.dir/custom_vliw.cpp.o"
  "CMakeFiles/custom_vliw.dir/custom_vliw.cpp.o.d"
  "custom_vliw"
  "custom_vliw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_vliw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
