# Empty compiler generated dependencies file for custom_vliw.
# This may be replaced when dependencies are built.
