# Empty compiler generated dependencies file for bench_ablation_director.
# This may be replaced when dependencies are built.
