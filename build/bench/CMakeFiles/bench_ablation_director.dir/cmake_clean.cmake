file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_director.dir/bench_ablation_director.cpp.o"
  "CMakeFiles/bench_ablation_director.dir/bench_ablation_director.cpp.o.d"
  "bench_ablation_director"
  "bench_ablation_director.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_director.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
