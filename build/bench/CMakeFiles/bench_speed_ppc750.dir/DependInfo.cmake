
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_speed_ppc750.cpp" "bench/CMakeFiles/bench_speed_ppc750.dir/bench_speed_ppc750.cpp.o" "gcc" "bench/CMakeFiles/bench_speed_ppc750.dir/bench_speed_ppc750.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/osm_common.dir/DependInfo.cmake"
  "/root/repo/build/src/de/CMakeFiles/osm_de.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/osm_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/osm_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/osm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/uarch/CMakeFiles/osm_uarch.dir/DependInfo.cmake"
  "/root/repo/build/src/sarm/CMakeFiles/osm_sarm.dir/DependInfo.cmake"
  "/root/repo/build/src/ppc750/CMakeFiles/osm_ppc750.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/osm_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/osm_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/osm_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/adl/CMakeFiles/osm_adl.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/osm_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
