file(REMOVE_RECURSE
  "CMakeFiles/bench_speed_ppc750.dir/bench_speed_ppc750.cpp.o"
  "CMakeFiles/bench_speed_ppc750.dir/bench_speed_ppc750.cpp.o.d"
  "bench_speed_ppc750"
  "bench_speed_ppc750.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_speed_ppc750.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
