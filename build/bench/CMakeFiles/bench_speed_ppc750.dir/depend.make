# Empty dependencies file for bench_speed_ppc750.
# This may be replaced when dependencies are built.
