file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_dispatch.dir/bench_fig2_dispatch.cpp.o"
  "CMakeFiles/bench_fig2_dispatch.dir/bench_fig2_dispatch.cpp.o.d"
  "bench_fig2_dispatch"
  "bench_fig2_dispatch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_dispatch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
