# Empty dependencies file for bench_speed_sarm.
# This may be replaced when dependencies are built.
