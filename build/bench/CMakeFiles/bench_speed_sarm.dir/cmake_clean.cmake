file(REMOVE_RECURSE
  "CMakeFiles/bench_speed_sarm.dir/bench_speed_sarm.cpp.o"
  "CMakeFiles/bench_speed_sarm.dir/bench_speed_sarm.cpp.o.d"
  "bench_speed_sarm"
  "bench_speed_sarm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_speed_sarm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
