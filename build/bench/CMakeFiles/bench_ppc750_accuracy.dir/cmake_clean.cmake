file(REMOVE_RECURSE
  "CMakeFiles/bench_ppc750_accuracy.dir/bench_ppc750_accuracy.cpp.o"
  "CMakeFiles/bench_ppc750_accuracy.dir/bench_ppc750_accuracy.cpp.o.d"
  "bench_ppc750_accuracy"
  "bench_ppc750_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ppc750_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
