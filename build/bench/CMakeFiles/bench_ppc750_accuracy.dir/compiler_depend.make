# Empty compiler generated dependencies file for bench_ppc750_accuracy.
# This may be replaced when dependencies are built.
