file(REMOVE_RECURSE
  "CMakeFiles/bench_analysis_extract.dir/bench_analysis_extract.cpp.o"
  "CMakeFiles/bench_analysis_extract.dir/bench_analysis_extract.cpp.o.d"
  "bench_analysis_extract"
  "bench_analysis_extract.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_analysis_extract.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
