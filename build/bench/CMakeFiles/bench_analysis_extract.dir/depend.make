# Empty dependencies file for bench_analysis_extract.
# This may be replaced when dependencies are built.
