file(REMOVE_RECURSE
  "CMakeFiles/osm-as.dir/osm_as.cpp.o"
  "CMakeFiles/osm-as.dir/osm_as.cpp.o.d"
  "osm-as"
  "osm-as.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/osm-as.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
