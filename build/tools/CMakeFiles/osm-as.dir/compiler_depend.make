# Empty compiler generated dependencies file for osm-as.
# This may be replaced when dependencies are built.
