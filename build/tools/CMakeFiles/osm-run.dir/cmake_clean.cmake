file(REMOVE_RECURSE
  "CMakeFiles/osm-run.dir/osm_run.cpp.o"
  "CMakeFiles/osm-run.dir/osm_run.cpp.o.d"
  "osm-run"
  "osm-run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/osm-run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
