# Empty dependencies file for osm-run.
# This may be replaced when dependencies are built.
