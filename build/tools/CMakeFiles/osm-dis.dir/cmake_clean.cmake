file(REMOVE_RECURSE
  "CMakeFiles/osm-dis.dir/osm_dis.cpp.o"
  "CMakeFiles/osm-dis.dir/osm_dis.cpp.o.d"
  "osm-dis"
  "osm-dis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/osm-dis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
