# Empty dependencies file for osm-dis.
# This may be replaced when dependencies are built.
