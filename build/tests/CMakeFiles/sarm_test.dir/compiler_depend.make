# Empty compiler generated dependencies file for sarm_test.
# This may be replaced when dependencies are built.
