file(REMOVE_RECURSE
  "CMakeFiles/sarm_test.dir/sarm_test.cpp.o"
  "CMakeFiles/sarm_test.dir/sarm_test.cpp.o.d"
  "sarm_test"
  "sarm_test.pdb"
  "sarm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sarm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
