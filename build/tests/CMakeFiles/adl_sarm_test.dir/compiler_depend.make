# Empty compiler generated dependencies file for adl_sarm_test.
# This may be replaced when dependencies are built.
