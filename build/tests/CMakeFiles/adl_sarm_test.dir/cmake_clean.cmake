file(REMOVE_RECURSE
  "CMakeFiles/adl_sarm_test.dir/adl_sarm_test.cpp.o"
  "CMakeFiles/adl_sarm_test.dir/adl_sarm_test.cpp.o.d"
  "adl_sarm_test"
  "adl_sarm_test.pdb"
  "adl_sarm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adl_sarm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
