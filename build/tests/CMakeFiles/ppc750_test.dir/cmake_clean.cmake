file(REMOVE_RECURSE
  "CMakeFiles/ppc750_test.dir/ppc750_test.cpp.o"
  "CMakeFiles/ppc750_test.dir/ppc750_test.cpp.o.d"
  "ppc750_test"
  "ppc750_test.pdb"
  "ppc750_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppc750_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
