# Empty compiler generated dependencies file for ppc750_test.
# This may be replaced when dependencies are built.
