# Empty compiler generated dependencies file for de_test.
# This may be replaced when dependencies are built.
