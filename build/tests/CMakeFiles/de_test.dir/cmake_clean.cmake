file(REMOVE_RECURSE
  "CMakeFiles/de_test.dir/de_test.cpp.o"
  "CMakeFiles/de_test.dir/de_test.cpp.o.d"
  "de_test"
  "de_test.pdb"
  "de_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/de_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
