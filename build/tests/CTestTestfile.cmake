# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/de_test[1]_include.cmake")
include("/root/repo/build/tests/mem_test[1]_include.cmake")
include("/root/repo/build/tests/isa_test[1]_include.cmake")
include("/root/repo/build/tests/assembler_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/uarch_test[1]_include.cmake")
include("/root/repo/build/tests/sarm_test[1]_include.cmake")
include("/root/repo/build/tests/ppc750_test[1]_include.cmake")
include("/root/repo/build/tests/baseline_test[1]_include.cmake")
include("/root/repo/build/tests/workloads_test[1]_include.cmake")
include("/root/repo/build/tests/equivalence_test[1]_include.cmake")
include("/root/repo/build/tests/analysis_test[1]_include.cmake")
include("/root/repo/build/tests/adl_test[1]_include.cmake")
include("/root/repo/build/tests/trace_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/smt_test[1]_include.cmake")
include("/root/repo/build/tests/stats_test[1]_include.cmake")
include("/root/repo/build/tests/adl_sarm_test[1]_include.cmake")
