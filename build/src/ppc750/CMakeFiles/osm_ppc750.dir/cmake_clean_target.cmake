file(REMOVE_RECURSE
  "libosm_ppc750.a"
)
