file(REMOVE_RECURSE
  "CMakeFiles/osm_ppc750.dir/ppc750.cpp.o"
  "CMakeFiles/osm_ppc750.dir/ppc750.cpp.o.d"
  "libosm_ppc750.a"
  "libosm_ppc750.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/osm_ppc750.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
