# Empty compiler generated dependencies file for osm_ppc750.
# This may be replaced when dependencies are built.
