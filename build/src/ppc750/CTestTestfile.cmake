# CMake generated Testfile for 
# Source directory: /root/repo/src/ppc750
# Build directory: /root/repo/build/src/ppc750
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
