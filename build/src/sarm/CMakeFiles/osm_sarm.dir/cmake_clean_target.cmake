file(REMOVE_RECURSE
  "libosm_sarm.a"
)
