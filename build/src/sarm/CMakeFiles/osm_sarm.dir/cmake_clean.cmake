file(REMOVE_RECURSE
  "CMakeFiles/osm_sarm.dir/sarm.cpp.o"
  "CMakeFiles/osm_sarm.dir/sarm.cpp.o.d"
  "libosm_sarm.a"
  "libosm_sarm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/osm_sarm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
