# Empty dependencies file for osm_sarm.
# This may be replaced when dependencies are built.
