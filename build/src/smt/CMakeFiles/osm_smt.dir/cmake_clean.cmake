file(REMOVE_RECURSE
  "CMakeFiles/osm_smt.dir/smt.cpp.o"
  "CMakeFiles/osm_smt.dir/smt.cpp.o.d"
  "libosm_smt.a"
  "libosm_smt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/osm_smt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
