file(REMOVE_RECURSE
  "libosm_smt.a"
)
