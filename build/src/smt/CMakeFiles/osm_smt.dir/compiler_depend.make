# Empty compiler generated dependencies file for osm_smt.
# This may be replaced when dependencies are built.
