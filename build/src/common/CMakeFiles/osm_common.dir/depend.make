# Empty dependencies file for osm_common.
# This may be replaced when dependencies are built.
