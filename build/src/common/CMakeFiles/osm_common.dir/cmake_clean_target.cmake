file(REMOVE_RECURSE
  "libosm_common.a"
)
