file(REMOVE_RECURSE
  "CMakeFiles/osm_common.dir/bits.cpp.o"
  "CMakeFiles/osm_common.dir/bits.cpp.o.d"
  "CMakeFiles/osm_common.dir/log.cpp.o"
  "CMakeFiles/osm_common.dir/log.cpp.o.d"
  "CMakeFiles/osm_common.dir/xrandom.cpp.o"
  "CMakeFiles/osm_common.dir/xrandom.cpp.o.d"
  "libosm_common.a"
  "libosm_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/osm_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
