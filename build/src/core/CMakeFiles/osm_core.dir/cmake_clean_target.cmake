file(REMOVE_RECURSE
  "libosm_core.a"
)
