# Empty compiler generated dependencies file for osm_core.
# This may be replaced when dependencies are built.
