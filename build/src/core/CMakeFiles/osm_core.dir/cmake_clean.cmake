file(REMOVE_RECURSE
  "CMakeFiles/osm_core.dir/core.cpp.o"
  "CMakeFiles/osm_core.dir/core.cpp.o.d"
  "CMakeFiles/osm_core.dir/sim_kernel.cpp.o"
  "CMakeFiles/osm_core.dir/sim_kernel.cpp.o.d"
  "libosm_core.a"
  "libosm_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/osm_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
