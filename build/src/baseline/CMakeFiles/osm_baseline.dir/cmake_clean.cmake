file(REMOVE_RECURSE
  "CMakeFiles/osm_baseline.dir/hardwired_sarm.cpp.o"
  "CMakeFiles/osm_baseline.dir/hardwired_sarm.cpp.o.d"
  "CMakeFiles/osm_baseline.dir/port_ppc.cpp.o"
  "CMakeFiles/osm_baseline.dir/port_ppc.cpp.o.d"
  "libosm_baseline.a"
  "libosm_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/osm_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
