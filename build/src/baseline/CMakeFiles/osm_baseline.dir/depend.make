# Empty dependencies file for osm_baseline.
# This may be replaced when dependencies are built.
