file(REMOVE_RECURSE
  "libosm_baseline.a"
)
