file(REMOVE_RECURSE
  "CMakeFiles/osm_mem.dir/cache.cpp.o"
  "CMakeFiles/osm_mem.dir/cache.cpp.o.d"
  "CMakeFiles/osm_mem.dir/main_memory.cpp.o"
  "CMakeFiles/osm_mem.dir/main_memory.cpp.o.d"
  "CMakeFiles/osm_mem.dir/tlb.cpp.o"
  "CMakeFiles/osm_mem.dir/tlb.cpp.o.d"
  "CMakeFiles/osm_mem.dir/write_buffer.cpp.o"
  "CMakeFiles/osm_mem.dir/write_buffer.cpp.o.d"
  "libosm_mem.a"
  "libosm_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/osm_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
