file(REMOVE_RECURSE
  "libosm_mem.a"
)
