# Empty dependencies file for osm_mem.
# This may be replaced when dependencies are built.
