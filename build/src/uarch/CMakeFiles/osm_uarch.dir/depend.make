# Empty dependencies file for osm_uarch.
# This may be replaced when dependencies are built.
