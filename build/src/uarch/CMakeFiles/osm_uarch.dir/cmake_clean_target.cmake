file(REMOVE_RECURSE
  "libosm_uarch.a"
)
