file(REMOVE_RECURSE
  "CMakeFiles/osm_uarch.dir/inorder_queue.cpp.o"
  "CMakeFiles/osm_uarch.dir/inorder_queue.cpp.o.d"
  "CMakeFiles/osm_uarch.dir/predictor.cpp.o"
  "CMakeFiles/osm_uarch.dir/predictor.cpp.o.d"
  "CMakeFiles/osm_uarch.dir/register_file.cpp.o"
  "CMakeFiles/osm_uarch.dir/register_file.cpp.o.d"
  "CMakeFiles/osm_uarch.dir/rename.cpp.o"
  "CMakeFiles/osm_uarch.dir/rename.cpp.o.d"
  "CMakeFiles/osm_uarch.dir/reset.cpp.o"
  "CMakeFiles/osm_uarch.dir/reset.cpp.o.d"
  "libosm_uarch.a"
  "libosm_uarch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/osm_uarch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
