
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/uarch/inorder_queue.cpp" "src/uarch/CMakeFiles/osm_uarch.dir/inorder_queue.cpp.o" "gcc" "src/uarch/CMakeFiles/osm_uarch.dir/inorder_queue.cpp.o.d"
  "/root/repo/src/uarch/predictor.cpp" "src/uarch/CMakeFiles/osm_uarch.dir/predictor.cpp.o" "gcc" "src/uarch/CMakeFiles/osm_uarch.dir/predictor.cpp.o.d"
  "/root/repo/src/uarch/register_file.cpp" "src/uarch/CMakeFiles/osm_uarch.dir/register_file.cpp.o" "gcc" "src/uarch/CMakeFiles/osm_uarch.dir/register_file.cpp.o.d"
  "/root/repo/src/uarch/rename.cpp" "src/uarch/CMakeFiles/osm_uarch.dir/rename.cpp.o" "gcc" "src/uarch/CMakeFiles/osm_uarch.dir/rename.cpp.o.d"
  "/root/repo/src/uarch/reset.cpp" "src/uarch/CMakeFiles/osm_uarch.dir/reset.cpp.o" "gcc" "src/uarch/CMakeFiles/osm_uarch.dir/reset.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/osm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/osm_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/de/CMakeFiles/osm_de.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/osm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
