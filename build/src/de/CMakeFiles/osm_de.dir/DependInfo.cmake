
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/de/clock.cpp" "src/de/CMakeFiles/osm_de.dir/clock.cpp.o" "gcc" "src/de/CMakeFiles/osm_de.dir/clock.cpp.o.d"
  "/root/repo/src/de/event_queue.cpp" "src/de/CMakeFiles/osm_de.dir/event_queue.cpp.o" "gcc" "src/de/CMakeFiles/osm_de.dir/event_queue.cpp.o.d"
  "/root/repo/src/de/kernel.cpp" "src/de/CMakeFiles/osm_de.dir/kernel.cpp.o" "gcc" "src/de/CMakeFiles/osm_de.dir/kernel.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/osm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
