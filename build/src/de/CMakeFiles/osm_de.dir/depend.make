# Empty dependencies file for osm_de.
# This may be replaced when dependencies are built.
