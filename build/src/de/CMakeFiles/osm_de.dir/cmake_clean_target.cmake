file(REMOVE_RECURSE
  "libosm_de.a"
)
