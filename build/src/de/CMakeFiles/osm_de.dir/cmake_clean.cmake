file(REMOVE_RECURSE
  "CMakeFiles/osm_de.dir/clock.cpp.o"
  "CMakeFiles/osm_de.dir/clock.cpp.o.d"
  "CMakeFiles/osm_de.dir/event_queue.cpp.o"
  "CMakeFiles/osm_de.dir/event_queue.cpp.o.d"
  "CMakeFiles/osm_de.dir/kernel.cpp.o"
  "CMakeFiles/osm_de.dir/kernel.cpp.o.d"
  "libosm_de.a"
  "libosm_de.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/osm_de.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
