file(REMOVE_RECURSE
  "libosm_trace.a"
)
