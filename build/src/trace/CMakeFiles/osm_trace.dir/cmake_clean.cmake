file(REMOVE_RECURSE
  "CMakeFiles/osm_trace.dir/trace.cpp.o"
  "CMakeFiles/osm_trace.dir/trace.cpp.o.d"
  "libosm_trace.a"
  "libosm_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/osm_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
