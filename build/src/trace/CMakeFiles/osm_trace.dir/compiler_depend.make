# Empty compiler generated dependencies file for osm_trace.
# This may be replaced when dependencies are built.
