# Empty dependencies file for osm_workloads.
# This may be replaced when dependencies are built.
