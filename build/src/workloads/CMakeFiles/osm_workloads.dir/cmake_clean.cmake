file(REMOVE_RECURSE
  "CMakeFiles/osm_workloads.dir/randprog.cpp.o"
  "CMakeFiles/osm_workloads.dir/randprog.cpp.o.d"
  "CMakeFiles/osm_workloads.dir/workloads.cpp.o"
  "CMakeFiles/osm_workloads.dir/workloads.cpp.o.d"
  "libosm_workloads.a"
  "libosm_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/osm_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
