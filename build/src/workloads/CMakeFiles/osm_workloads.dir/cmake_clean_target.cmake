file(REMOVE_RECURSE
  "libosm_workloads.a"
)
