file(REMOVE_RECURSE
  "CMakeFiles/osm_stats.dir/stats.cpp.o"
  "CMakeFiles/osm_stats.dir/stats.cpp.o.d"
  "libosm_stats.a"
  "libosm_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/osm_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
