file(REMOVE_RECURSE
  "libosm_stats.a"
)
