# Empty compiler generated dependencies file for osm_stats.
# This may be replaced when dependencies are built.
