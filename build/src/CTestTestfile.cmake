# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("stats")
subdirs("de")
subdirs("isa")
subdirs("mem")
subdirs("core")
subdirs("uarch")
subdirs("sarm")
subdirs("ppc750")
subdirs("baseline")
subdirs("workloads")
subdirs("trace")
subdirs("smt")
subdirs("analysis")
subdirs("adl")
