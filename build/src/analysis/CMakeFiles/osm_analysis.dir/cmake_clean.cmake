file(REMOVE_RECURSE
  "CMakeFiles/osm_analysis.dir/analysis.cpp.o"
  "CMakeFiles/osm_analysis.dir/analysis.cpp.o.d"
  "libosm_analysis.a"
  "libosm_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/osm_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
