# Empty dependencies file for osm_analysis.
# This may be replaced when dependencies are built.
