file(REMOVE_RECURSE
  "libosm_analysis.a"
)
