file(REMOVE_RECURSE
  "CMakeFiles/osm_isa.dir/arch.cpp.o"
  "CMakeFiles/osm_isa.dir/arch.cpp.o.d"
  "CMakeFiles/osm_isa.dir/assembler.cpp.o"
  "CMakeFiles/osm_isa.dir/assembler.cpp.o.d"
  "CMakeFiles/osm_isa.dir/decoded_inst.cpp.o"
  "CMakeFiles/osm_isa.dir/decoded_inst.cpp.o.d"
  "CMakeFiles/osm_isa.dir/disasm.cpp.o"
  "CMakeFiles/osm_isa.dir/disasm.cpp.o.d"
  "CMakeFiles/osm_isa.dir/encoding.cpp.o"
  "CMakeFiles/osm_isa.dir/encoding.cpp.o.d"
  "CMakeFiles/osm_isa.dir/image_io.cpp.o"
  "CMakeFiles/osm_isa.dir/image_io.cpp.o.d"
  "CMakeFiles/osm_isa.dir/iss.cpp.o"
  "CMakeFiles/osm_isa.dir/iss.cpp.o.d"
  "CMakeFiles/osm_isa.dir/program.cpp.o"
  "CMakeFiles/osm_isa.dir/program.cpp.o.d"
  "CMakeFiles/osm_isa.dir/semantics.cpp.o"
  "CMakeFiles/osm_isa.dir/semantics.cpp.o.d"
  "libosm_isa.a"
  "libosm_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/osm_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
