
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/isa/arch.cpp" "src/isa/CMakeFiles/osm_isa.dir/arch.cpp.o" "gcc" "src/isa/CMakeFiles/osm_isa.dir/arch.cpp.o.d"
  "/root/repo/src/isa/assembler.cpp" "src/isa/CMakeFiles/osm_isa.dir/assembler.cpp.o" "gcc" "src/isa/CMakeFiles/osm_isa.dir/assembler.cpp.o.d"
  "/root/repo/src/isa/decoded_inst.cpp" "src/isa/CMakeFiles/osm_isa.dir/decoded_inst.cpp.o" "gcc" "src/isa/CMakeFiles/osm_isa.dir/decoded_inst.cpp.o.d"
  "/root/repo/src/isa/disasm.cpp" "src/isa/CMakeFiles/osm_isa.dir/disasm.cpp.o" "gcc" "src/isa/CMakeFiles/osm_isa.dir/disasm.cpp.o.d"
  "/root/repo/src/isa/encoding.cpp" "src/isa/CMakeFiles/osm_isa.dir/encoding.cpp.o" "gcc" "src/isa/CMakeFiles/osm_isa.dir/encoding.cpp.o.d"
  "/root/repo/src/isa/image_io.cpp" "src/isa/CMakeFiles/osm_isa.dir/image_io.cpp.o" "gcc" "src/isa/CMakeFiles/osm_isa.dir/image_io.cpp.o.d"
  "/root/repo/src/isa/iss.cpp" "src/isa/CMakeFiles/osm_isa.dir/iss.cpp.o" "gcc" "src/isa/CMakeFiles/osm_isa.dir/iss.cpp.o.d"
  "/root/repo/src/isa/program.cpp" "src/isa/CMakeFiles/osm_isa.dir/program.cpp.o" "gcc" "src/isa/CMakeFiles/osm_isa.dir/program.cpp.o.d"
  "/root/repo/src/isa/semantics.cpp" "src/isa/CMakeFiles/osm_isa.dir/semantics.cpp.o" "gcc" "src/isa/CMakeFiles/osm_isa.dir/semantics.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/osm_common.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/osm_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
