file(REMOVE_RECURSE
  "libosm_isa.a"
)
