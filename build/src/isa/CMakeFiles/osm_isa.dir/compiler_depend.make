# Empty compiler generated dependencies file for osm_isa.
# This may be replaced when dependencies are built.
