file(REMOVE_RECURSE
  "CMakeFiles/osm_adl.dir/adl.cpp.o"
  "CMakeFiles/osm_adl.dir/adl.cpp.o.d"
  "CMakeFiles/osm_adl.dir/adl_sarm.cpp.o"
  "CMakeFiles/osm_adl.dir/adl_sarm.cpp.o.d"
  "libosm_adl.a"
  "libosm_adl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/osm_adl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
