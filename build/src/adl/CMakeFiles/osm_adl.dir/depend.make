# Empty dependencies file for osm_adl.
# This may be replaced when dependencies are built.
