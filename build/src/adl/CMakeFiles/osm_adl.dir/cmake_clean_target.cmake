file(REMOVE_RECURSE
  "libosm_adl.a"
)
