// Reproduces the paper §5.2 accuracy claim: "We validated our PowerPC 750
// model against the SystemC based model ... the differences in timing are
// within 3% in all cases."  Here the two independently implemented models
// of the same machine spec — the OSM P750 and the port/wire DE model — are
// compared per workload on the MediaBench + SPECint-like mix.
#include <cmath>
#include <cstdio>

#include "baseline/port_ppc.hpp"
#include "mem/main_memory.hpp"
#include "ppc750/ppc750.hpp"
#include "workloads/randprog.hpp"
#include "workloads/workloads.hpp"

using namespace osm;

int main() {
    std::printf("== §5.2 accuracy: OSM P750 vs port/wire model (paper: within 3%%) ==\n\n");
    std::printf("%-14s %14s %14s %12s\n", "workload", "OSM cycles", "port cycles",
                "difference");

    double worst = 0;
    bool functional_ok = true;
    for (auto& w : workloads::mixed_suite(2)) {
        ppc750::p750_config cfg;
        mem::main_memory m1, m2;
        ppc750::p750_model a(cfg, m1);
        a.load(w.image);
        a.run(2'000'000'000ull);
        baseline::port_ppc b(cfg, m2);
        b.load(w.image);
        b.run(2'000'000'000ull);

        for (unsigned r = 0; r < 32; ++r) {
            if (a.gpr(r) != b.gpr(r)) functional_ok = false;
        }
        const double ca = static_cast<double>(a.stats().cycles);
        const double cb = static_cast<double>(b.stats().cycles);
        const double diff = 100.0 * (ca - cb) / cb;
        worst = std::max(worst, std::abs(diff));
        std::printf("%-14s %14llu %14llu %+11.2f%%\n", w.name.c_str(),
                    static_cast<unsigned long long>(a.stats().cycles),
                    static_cast<unsigned long long>(b.stats().cycles), diff);
    }
    std::printf("\non the structured suite the two implementations converge exactly;\n");
    std::printf("mispredict-heavy random programs expose the residual interpretation\n");
    std::printf("differences (wrong-path fetch accounting), the paper's error class:\n\n");
    std::printf("%-14s %14s %14s %12s\n", "random prog", "OSM cycles", "port cycles",
                "difference");
    for (int i = 0; i < 8; ++i) {
        workloads::randprog_options opt;
        opt.seed = 777u + static_cast<unsigned>(i) * 131u;
        opt.blocks = 16;
        opt.block_len = 12;
        const auto img = workloads::make_random_program(opt);
        ppc750::p750_config cfg;
        mem::main_memory m1, m2;
        ppc750::p750_model a(cfg, m1);
        a.load(img);
        a.run(200'000'000);
        baseline::port_ppc b(cfg, m2);
        b.load(img);
        b.run(200'000'000);
        const double ca = static_cast<double>(a.stats().cycles);
        const double cb = static_cast<double>(b.stats().cycles);
        const double diff = 100.0 * (ca - cb) / cb;
        worst = std::max(worst, std::abs(diff));
        std::printf("seed-%-9llu %14llu %14llu %+11.2f%%\n",
                    static_cast<unsigned long long>(opt.seed),
                    static_cast<unsigned long long>(a.stats().cycles),
                    static_cast<unsigned long long>(b.stats().cycles), diff);
    }
    std::printf("\nworst |difference| = %.2f%% (paper: within 3%%); "
                "architectural state identical: %s\n",
                worst, functional_ok ? "yes" : "NO");
    return (worst < 3.0 && functional_ok) ? 0 : 1;
}
