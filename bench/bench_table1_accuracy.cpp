// Reproduces paper Table 1: "StrongARM model comparison" — simulated time
// of the OSM model vs the real ipaq-3650 hardware on six MediaBench
// applications, reported as a percentage difference.
//
// Substitution (DESIGN.md): the hardware stand-in is the independently
// implemented hand-sequentialized simulator of the same pipeline, given the
// "undocumented" memory-subsystem details the paper could not obtain — the
// platform's caches use FIFO (round-robin) replacement and a slower bus
// setup, while the OSM model assumes LRU and the nominal bus, mirroring the
// paper's statement that "all details of the memory subsystem were not
// available [so] the memory modules may have also contributed to the
// differences".
#include <cmath>
#include <cstdio>

#include "baseline/hardwired_sarm.hpp"
#include "mem/main_memory.hpp"
#include "sarm/sarm.hpp"
#include "workloads/workloads.hpp"

using namespace osm;

int main() {
    std::printf("== Table 1: StrongARM model comparison ==\n");
    std::printf("(reference = hardware stand-in with undisclosed memory details;\n");
    std::printf(" simulator = OSM SARM model; paper reports 0.7%%..5.4%%)\n\n");
    std::printf("%-12s %16s %16s %12s\n", "benchmark", "ipaq(cycles)",
                "Simulator(cycles)", "difference");

    // The platform whose details the model author could not see.
    sarm::sarm_config platform;
    platform.icache.repl = mem::replacement::fifo;
    platform.dcache.repl = mem::replacement::fifo;
    platform.bus.setup_cycles = 5;
    platform.mem_latency = 14;
    platform.mul_extra = 1;  // later silicon revision's iterative multiplier
    platform.dtlb.miss_penalty = 24;

    // The published model: nominal parameters.
    const sarm::sarm_config model;

    double worst = 0;
    for (auto& w : workloads::mediabench_suite(2)) {
        mem::main_memory m_hw, m_sim;
        baseline::hardwired_sarm hw(platform, m_hw);
        hw.load(w.image);
        hw.run(2'000'000'000ull);

        sarm::sarm_model sim(model, m_sim);
        sim.load(w.image);
        sim.run(2'000'000'000ull);

        const double ref = static_cast<double>(hw.cycles());
        const double got = static_cast<double>(sim.stats().cycles);
        const double diff = 100.0 * (got - ref) / ref;
        worst = std::max(worst, std::abs(diff));
        std::printf("%-12s %16llu %16llu %+11.1f%%\n", w.name.c_str(),
                    static_cast<unsigned long long>(hw.cycles()),
                    static_cast<unsigned long long>(sim.stats().cycles), diff);
    }
    std::printf("\nworst-case |difference| = %.1f%%  (paper max: 5.4%%)\n", worst);
    return worst < 10.0 ? 0 : 1;
}
