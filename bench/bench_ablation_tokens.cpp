// Micro-bench for the token-transaction layer (paper Fig. 4 kernel and the
// L-language primitives): per-primitive costs, null-identifier skip, and
// the end-to-end cost of one simulated SARM/P750 cycle.
#include <benchmark/benchmark.h>

#include <memory>

#include "core/director.hpp"
#include "core/osm.hpp"
#include "core/osm_graph.hpp"
#include "core/token_manager.hpp"
#include "mem/main_memory.hpp"
#include "ppc750/ppc750.hpp"
#include "sarm/sarm.hpp"
#include "uarch/register_file.hpp"
#include "workloads/workloads.hpp"

using namespace osm;

namespace {

struct fixture {
    core::osm_graph g{"f"};
    fixture() {
        g.add_state("I");
        g.finalize();
    }
};

void BM_UnitAllocateRelease(benchmark::State& state) {
    fixture f;
    core::osm o(f.g, "o");
    core::unit_token_manager m("m");
    for (auto _ : state) {
        benchmark::DoNotOptimize(m.can_allocate(0, o));
        m.do_allocate(0, o);
        benchmark::DoNotOptimize(m.can_release(0, o));
        m.do_release(0, o);
    }
}
BENCHMARK(BM_UnitAllocateRelease);

void BM_RegfileInquireForwarding(benchmark::State& state) {
    fixture f;
    core::osm writer(f.g, "w");
    core::osm reader(f.g, "r");
    uarch::register_file_manager rf("rf", 32, true, true);
    rf.do_allocate(uarch::reg_update_ident(5), writer);
    rf.publish(5, 42);
    for (auto _ : state) {
        benchmark::DoNotOptimize(rf.inquire(uarch::reg_value_ident(5), reader));
        benchmark::DoNotOptimize(rf.read(5));
    }
}
BENCHMARK(BM_RegfileInquireForwarding);

/// Cost of a whole condition evaluation: an edge with `n` primitives, all
/// satisfied, versus the same edge with null identifiers (skipped).
void BM_ConditionEvaluation(benchmark::State& state) {
    const bool nulls = state.range(0) != 0;
    core::osm_graph g("cond");
    g.set_ident_slots(6);
    const auto I = g.add_state("I");
    const auto A = g.add_state("A");
    uarch::register_file_manager rf("rf", 32, true, true);
    const auto e1 = g.add_edge(I, A);
    for (std::int32_t s = 0; s < 6; ++s) {
        g.edge_inquire(e1, rf, core::ident_expr::from_slot(s));
    }
    const auto e2 = g.add_edge(A, I);
    g.finalize();
    (void)e2;

    core::osm o(g, "o");
    for (std::int32_t s = 0; s < 6; ++s) {
        o.set_ident(s, nulls ? core::k_null_ident : uarch::reg_value_ident(
                                                        static_cast<unsigned>(s)));
    }
    core::director d;
    d.add(o);
    for (auto _ : state) {
        benchmark::DoNotOptimize(d.control_step());  // I->A then A->I
        benchmark::DoNotOptimize(d.control_step());
    }
    state.SetLabel(nulls ? "6 null prims (skipped)" : "6 live inquiries");
}
BENCHMARK(BM_ConditionEvaluation)->Arg(0)->Arg(1);

void BM_SarmSimulatedCycle(benchmark::State& state) {
    const auto w = workloads::make_gsm_dec(4);
    mem::main_memory m;
    sarm::sarm_config cfg;
    sarm::sarm_model model(cfg, m);
    model.load(w.image);
    std::uint64_t done = 0;
    for (auto _ : state) {
        done += model.run(1000);
        if (model.halted()) {
            state.PauseTiming();
            model.load(w.image);
            state.ResumeTiming();
        }
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(done));
    state.SetLabel("items = simulated cycles");
}
BENCHMARK(BM_SarmSimulatedCycle);

void BM_P750SimulatedCycle(benchmark::State& state) {
    const auto w = workloads::make_gsm_dec(4);
    mem::main_memory m;
    ppc750::p750_config cfg;
    ppc750::p750_model model(cfg, m);
    model.load(w.image);
    std::uint64_t done = 0;
    for (auto _ : state) {
        done += model.run(1000);
        if (model.halted()) {
            state.PauseTiming();
            model.load(w.image);
            state.ResumeTiming();
        }
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(done));
    state.SetLabel("items = simulated cycles");
}
BENCHMARK(BM_P750SimulatedCycle);

}  // namespace

BENCHMARK_MAIN();
