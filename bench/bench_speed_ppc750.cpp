// Reproduces the paper §5.2 throughput comparison: "The average speed of
// the OSM model is 250k cycles/sec on a P-III 1.1GHz desktop, 4 times that
// of the SystemC model."
//
// Substitution (DESIGN.md): the SystemC model's role is played by the
// port/wire discrete-event model of the same superscalar (modules connected
// by signals, evaluated through delta cycles).  The headline shape — the
// declarative OSM model outruns the hardware-centric port model — is what
// this bench checks; the measured delta-cycle count per simulated cycle
// quantifies the DE machinery overhead the paper blames.
//
// Engines come from the sim::engine registry (hot loop unchanged: one
// engine::run() per workload); the per-cycle DE overhead is read from the
// port engine's uniform stats_report.  The ablation iterates every
// registered engine over the mixed suite.
#include <chrono>
#include <cstdio>
#include <string>

#include "sim/diff_runner.hpp"
#include "sim/registry.hpp"
#include "workloads/workloads.hpp"

using namespace osm;

namespace {

struct timed_run {
    double secs = 0;
    std::unique_ptr<sim::engine> eng;
};

timed_run measure(const std::string& name, const sim::engine_config& cfg,
                  const isa::program_image& img) {
    timed_run t;
    t.eng = sim::make_engine(name, cfg);
    t.eng->load(img);
    const auto t0 = std::chrono::steady_clock::now();
    t.eng->run(2'000'000'000ull);
    t.secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    return t;
}

/// Steady-state simulated-instruction throughput (Minst/s) of engine
/// `name` over the mixed suite; fresh engine per run, FP workloads skipped
/// for integer-only engines, `reps` repeats short workloads above timer
/// noise.  One untimed warmup run per workload keeps cold-start host costs
/// out of the timed region.
double measure_minst(const std::string& name, const sim::engine_config& cfg,
                     unsigned reps) {
    const bool fp_ok = sim::make_engine(name, cfg)->executes_fp();
    double insts = 0;
    double secs = 0;
    for (auto& w : workloads::mixed_suite(2)) {
        if (!fp_ok && sim::program_uses_fp(w.image)) continue;
        measure(name, cfg, w.image);  // untimed warmup
        for (unsigned r = 0; r < reps; ++r) {
            auto t = measure(name, cfg, w.image);
            secs += t.secs;
            insts += static_cast<double>(t.eng->retired());
        }
    }
    return secs > 0 ? insts / secs / 1e6 : -1.0;
}

unsigned reps_for(const std::string& name) {
    if (name == "iss") return 8;
    if (name == "hw") return 2;
    return 1;
}

/// Decode-cache on/off ablation (see bench_speed_sarm for the SARM-suite
/// table).  The ISS row is the pure fetch/decode hot path; the superscalar
/// engines spend most of their time in per-cycle scheduling, so their rows
/// quantify how much the decode win is diluted there.
void decode_cache_ablation() {
    std::printf("\n== decode-cache ablation (pre-decoded (pc, word)-tagged cache) ==\n\n");
    std::printf("%-26s %12s %12s %9s\n", "engine", "on Minst/s", "off Minst/s",
                "speedup");

    double iss_ratio = 0;
    for (const auto& name : sim::engine_registry::instance().names()) {
        sim::engine_config cfg;
        const unsigned reps = reps_for(name);
        cfg.decode_cache = true;
        const double on = measure_minst(name, cfg, reps);
        cfg.decode_cache = false;
        const double off = measure_minst(name, cfg, reps);
        if (on < 0 || off < 0) continue;
        if (name == "iss") iss_ratio = on / off;
        std::printf("%-26s %12.2f %12.2f %8.2fx\n", name.c_str(), on, off,
                    on / off);
    }
    std::printf("\nfetch/decode hot path speedup with the cache on: %.2fx (target >= 1.2x: %s)\n",
                iss_ratio, iss_ratio >= 1.2 ? "met" : "NOT MET");
}

/// Block-cache on/off ablation over the mixed suite (see bench_speed_sarm
/// for the companion table): decode cache stays on in both columns, so the
/// ISS row is translated-block dispatch vs the decode-cache baseline.
void block_cache_ablation() {
    std::printf("\n== block-cache ablation (translated basic blocks + threaded dispatch) ==\n\n");
    std::printf("%-26s %12s %12s %9s\n", "engine", "on Minst/s", "off Minst/s",
                "speedup");

    double iss_ratio = 0;
    for (const auto& name : sim::engine_registry::instance().names()) {
        sim::engine_config cfg;
        const unsigned reps = reps_for(name);
        cfg.block_cache = true;
        const double on = measure_minst(name, cfg, reps);
        cfg.block_cache = false;
        const double off = measure_minst(name, cfg, reps);
        if (on < 0 || off < 0) continue;
        if (name == "iss") iss_ratio = on / off;
        std::printf("%-26s %12.2f %12.2f %8.2fx\n", name.c_str(), on, off,
                    on / off);
    }
    std::printf("\nISS speedup over the decode-cache baseline: %.2fx (target >= 5x: %s)\n",
                iss_ratio, iss_ratio >= 5.0 ? "met" : "NOT MET");
}

/// Director-batch on/off ablation for OSM-director-based engines: the
/// superscalar models stall more than the SARM pipeline, so the blocked-OSM
/// skip memo has more visits to elide here.
void director_batch_ablation() {
    std::printf("\n== director-batch ablation (blocked-OSM skip via generation memos) ==\n\n");
    std::printf("%-26s %12s %12s %9s\n", "engine", "on Minst/s", "off Minst/s",
                "speedup");

    for (const auto& name : sim::engine_registry::instance().names()) {
        sim::engine_config probe_cfg;
        if (sim::make_engine(name, probe_cfg)->director() == nullptr) continue;
        sim::engine_config cfg;
        const unsigned reps = reps_for(name);
        cfg.director_batch = true;
        const double on = measure_minst(name, cfg, reps);
        cfg.director_batch = false;
        const double off = measure_minst(name, cfg, reps);
        if (on < 0 || off < 0) continue;
        std::printf("%-26s %12.2f %12.2f %8.2fx\n", name.c_str(), on, off,
                    on / off);
    }
}

}  // namespace

int main() {
    std::printf("== §5.2 speed: OSM P750 model vs port/wire DE model ==\n\n");
    std::printf("%-14s %14s %14s %8s %12s\n", "workload", "OSM kcyc/s",
                "port kcyc/s", "ratio", "deltas/cyc");

    const sim::engine_config cfg;
    double osm_cycles = 0;
    double osm_secs = 0;
    double port_cycles = 0;
    double port_secs = 0;
    for (auto& w : workloads::mixed_suite(2)) {
        // Untimed warmup runs: cold-start host effects stay out of the
        // timed region (steady-state kcyc/s reported).
        measure("p750", cfg, w.image);
        measure("port", cfg, w.image);
        auto osm_run = measure("p750", cfg, w.image);
        auto port_run = measure("port", cfg, w.image);

        const double k1 =
            static_cast<double>(osm_run.eng->cycles()) / osm_run.secs / 1e3;
        const double k2 =
            static_cast<double>(port_run.eng->cycles()) / port_run.secs / 1e3;
        const auto rep = port_run.eng->stats_report();
        const double deltas = static_cast<double>(
            std::get<std::uint64_t>(rep.at("de", "delta_cycles")));
        std::printf("%-14s %14.0f %14.0f %7.2fx %12.1f\n", w.name.c_str(), k1, k2,
                    k1 / k2,
                    deltas / static_cast<double>(port_run.eng->cycles()));
        osm_cycles += static_cast<double>(osm_run.eng->cycles());
        osm_secs += osm_run.secs;
        port_cycles += static_cast<double>(port_run.eng->cycles());
        port_secs += port_run.secs;
    }
    const double k_osm = osm_cycles / osm_secs / 1e3;
    const double k_port = port_cycles / port_secs / 1e3;
    std::printf("\naverage: OSM %.0f kcyc/s, port model %.0f kcyc/s (OSM/port = %.2fx)\n",
                k_osm, k_port, k_osm / k_port);
    std::printf("paper:   OSM 250 kcyc/s = 4x the SystemC model, P-III 1.1GHz\n");
    std::printf("shape check (OSM faster than port model): %s\n",
                k_osm > k_port ? "holds" : "DOES NOT HOLD");

    decode_cache_ablation();
    block_cache_ablation();
    director_batch_ablation();
    return k_osm > k_port ? 0 : 1;
}
