// Reproduces the paper §5.2 throughput comparison: "The average speed of
// the OSM model is 250k cycles/sec on a P-III 1.1GHz desktop, 4 times that
// of the SystemC model."
//
// Substitution (DESIGN.md): the SystemC model's role is played by the
// port/wire discrete-event model of the same superscalar (modules connected
// by signals, evaluated through delta cycles).  The headline shape — the
// declarative OSM model outruns the hardware-centric port model — is what
// this bench checks; the measured delta-cycle count per simulated cycle
// quantifies the DE machinery overhead the paper blames.
#include <chrono>
#include <cstdio>

#include "baseline/port_ppc.hpp"
#include "isa/iss.hpp"
#include "mem/main_memory.hpp"
#include "ppc750/ppc750.hpp"
#include "workloads/workloads.hpp"

using namespace osm;

namespace {

/// Simulated-instruction throughput (Minst/s) over the mixed suite.  The
/// model is re-loaded per run; `retired` extracts the per-run retirement
/// count and `reps` repeats short workloads above timer noise.
template <typename Model, typename Retired>
double measure_minst(Model& model, Retired retired, unsigned reps) {
    double insts = 0;
    double secs = 0;
    for (auto& w : workloads::mixed_suite(2)) {
        for (unsigned r = 0; r < reps; ++r) {
            model.load(w.image);
            const auto t0 = std::chrono::steady_clock::now();
            model.run(2'000'000'000ull);
            secs += std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
                        .count();
            insts += static_cast<double>(retired(model));
        }
    }
    return insts / secs / 1e6;
}

/// Decode-cache on/off ablation (see bench_speed_sarm for the SARM-side
/// table).  The ISS row is the pure fetch/decode hot path; the superscalar
/// engines spend most of their time in per-cycle scheduling, so their rows
/// quantify how much the decode win is diluted there.
void decode_cache_ablation() {
    std::printf("\n== decode-cache ablation (pre-decoded (pc, word)-tagged cache) ==\n\n");
    std::printf("%-26s %12s %12s %9s\n", "engine", "on Minst/s", "off Minst/s",
                "speedup");

    double iss_ratio = 0;
    {
        mem::main_memory m;
        isa::iss sim(m, /*use_decode_cache=*/true);
        const double on = measure_minst(
            sim, [](const isa::iss& s) { return s.instret(); }, 8);
        sim.set_decode_cache(false);
        const double off = measure_minst(
            sim, [](const isa::iss& s) { return s.instret(); }, 8);
        iss_ratio = on / off;
        std::printf("%-26s %12.1f %12.1f %8.2fx\n", "iss (fetch/decode path)", on,
                    off, iss_ratio);
    }
    {
        ppc750::p750_config cfg;
        mem::main_memory m;
        cfg.decode_cache = true;
        ppc750::p750_model on_model(cfg, m);
        const double on = measure_minst(
            on_model, [](const ppc750::p750_model& s) { return s.stats().retired; }, 1);
        cfg.decode_cache = false;
        ppc750::p750_model off_model(cfg, m);
        const double off = measure_minst(
            off_model, [](const ppc750::p750_model& s) { return s.stats().retired; }, 1);
        std::printf("%-26s %12.2f %12.2f %8.2fx\n", "OSM P750 model", on, off,
                    on / off);
    }
    {
        ppc750::p750_config cfg;
        mem::main_memory m;
        cfg.decode_cache = true;
        baseline::port_ppc on_model(cfg, m);
        const double on = measure_minst(
            on_model, [](const baseline::port_ppc& s) { return s.stats().retired; }, 1);
        cfg.decode_cache = false;
        baseline::port_ppc off_model(cfg, m);
        const double off = measure_minst(
            off_model, [](const baseline::port_ppc& s) { return s.stats().retired; }, 1);
        std::printf("%-26s %12.2f %12.2f %8.2fx\n", "port/wire DE model", on, off,
                    on / off);
    }
    std::printf("\nfetch/decode hot path speedup with the cache on: %.2fx (target >= 1.2x: %s)\n",
                iss_ratio, iss_ratio >= 1.2 ? "met" : "NOT MET");
}

}  // namespace

int main() {
    std::printf("== §5.2 speed: OSM P750 model vs port/wire DE model ==\n\n");
    std::printf("%-14s %14s %14s %8s %12s\n", "workload", "OSM kcyc/s",
                "port kcyc/s", "ratio", "deltas/cyc");

    double osm_cycles = 0;
    double osm_secs = 0;
    double port_cycles = 0;
    double port_secs = 0;
    for (auto& w : workloads::mixed_suite(2)) {
        ppc750::p750_config cfg;
        mem::main_memory m1, m2;

        ppc750::p750_model osm_model(cfg, m1);
        osm_model.load(w.image);
        auto t0 = std::chrono::steady_clock::now();
        osm_model.run(2'000'000'000ull);
        const double s1 =
            std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

        baseline::port_ppc port(cfg, m2);
        port.load(w.image);
        t0 = std::chrono::steady_clock::now();
        port.run(2'000'000'000ull);
        const double s2 =
            std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

        const double k1 = static_cast<double>(osm_model.stats().cycles) / s1 / 1e3;
        const double k2 = static_cast<double>(port.stats().cycles) / s2 / 1e3;
        std::printf("%-14s %14.0f %14.0f %7.2fx %12.1f\n", w.name.c_str(), k1, k2,
                    k1 / k2,
                    static_cast<double>(port.stats().delta_cycles) /
                        static_cast<double>(port.stats().cycles));
        osm_cycles += static_cast<double>(osm_model.stats().cycles);
        osm_secs += s1;
        port_cycles += static_cast<double>(port.stats().cycles);
        port_secs += s2;
    }
    const double k_osm = osm_cycles / osm_secs / 1e3;
    const double k_port = port_cycles / port_secs / 1e3;
    std::printf("\naverage: OSM %.0f kcyc/s, port model %.0f kcyc/s (OSM/port = %.2fx)\n",
                k_osm, k_port, k_osm / k_port);
    std::printf("paper:   OSM 250 kcyc/s = 4x the SystemC model, P-III 1.1GHz\n");
    std::printf("shape check (OSM faster than port model): %s\n",
                k_osm > k_port ? "holds" : "DOES NOT HOLD");

    decode_cache_ablation();
    return k_osm > k_port ? 0 : 1;
}
