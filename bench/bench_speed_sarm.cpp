// Reproduces the paper §5.1 throughput comparison: "The resulting simulator
// runs at the average speed of 650k cycles/sec ... In comparison, the ARM
// simulator of the SimpleScalar tool-set runs at 550k cycles/sec on the
// same machine."
//
// Substitution (DESIGN.md): the SimpleScalar role is played by the
// hand-sequentialized cycle simulator of the same pipeline.  Note that this
// baseline is leaner than SimpleScalar (no RUU machinery, no per-cycle
// statistics sweep), so the measured ratio overstates the hand-coded side
// relative to the paper's comparison; EXPERIMENTS.md discusses this.
//
// Engines are constructed through the sim::engine registry; the hot loop is
// still a single engine::run() call over the whole workload, so the adapter
// adds no per-cycle overhead.  The decode-cache ablation iterates every
// registered engine, so a newly-registered engine is benched for free.
#include <chrono>
#include <cstdio>
#include <string>

#include "sim/diff_runner.hpp"
#include "sim/registry.hpp"
#include "workloads/workloads.hpp"

using namespace osm;

namespace {

/// Load + run `img` on a fresh `name` engine; returns {seconds, engine}.
struct timed_run {
    double secs = 0;
    std::unique_ptr<sim::engine> eng;
};

timed_run measure(const std::string& name, const sim::engine_config& cfg,
                  const isa::program_image& img) {
    timed_run t;
    t.eng = sim::make_engine(name, cfg);
    t.eng->load(img);
    const auto t0 = std::chrono::steady_clock::now();
    t.eng->run(2'000'000'000ull);
    t.secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    return t;
}

/// Steady-state simulated-instruction throughput (Minst/s) of engine
/// `name` over the workload suite, repeated `reps` times so short
/// workloads measure above timer noise.  A fresh engine is built per run
/// (construction is noise next to millions of simulated cycles).  One
/// untimed warmup run per workload precedes the timed reps so cold-start
/// costs (host icache/branch predictors, allocator arenas, page faults)
/// are not billed to the timed region.  FP workloads are skipped for
/// integer-only engines; returns a negative value if nothing ran.
double measure_minst(const std::string& name, const sim::engine_config& cfg,
                     unsigned reps) {
    const bool fp_ok = sim::make_engine(name, cfg)->executes_fp();
    double insts = 0;
    double secs = 0;
    for (auto& w : workloads::mediabench_suite(2)) {
        if (!fp_ok && sim::program_uses_fp(w.image)) continue;
        measure(name, cfg, w.image);  // untimed warmup
        for (unsigned r = 0; r < reps; ++r) {
            auto t = measure(name, cfg, w.image);
            secs += t.secs;
            insts += static_cast<double>(t.eng->retired());
        }
    }
    return secs > 0 ? insts / secs / 1e6 : -1.0;
}

/// Per-engine repetition counts: the fast functional ISS needs more reps to
/// rise above timer noise; the cycle-accurate engines need fewer.
unsigned reps_for(const std::string& name) {
    if (name == "iss") return 8;
    if (name == "hw") return 2;
    return 1;
}

/// Decode-cache on/off ablation: the cache is architecturally invisible, so
/// the *only* difference between the two configurations is wall-clock time
/// per simulated instruction.  The functional ISS is the pure fetch/decode
/// hot path; the cycle-accurate engines dilute the win with per-cycle
/// scheduling work, which the table makes visible.  Every engine in the
/// registry gets a row.
void decode_cache_ablation() {
    std::printf("\n== decode-cache ablation (pre-decoded (pc, word)-tagged cache) ==\n\n");
    std::printf("%-26s %12s %12s %9s\n", "engine", "on Minst/s", "off Minst/s",
                "speedup");

    double iss_ratio = 0;
    for (const auto& name : sim::engine_registry::instance().names()) {
        sim::engine_config cfg;
        const unsigned reps = reps_for(name);
        cfg.decode_cache = true;
        const double on = measure_minst(name, cfg, reps);
        cfg.decode_cache = false;
        const double off = measure_minst(name, cfg, reps);
        if (on < 0 || off < 0) continue;
        if (name == "iss") iss_ratio = on / off;
        std::printf("%-26s %12.2f %12.2f %8.2fx\n", name.c_str(), on, off,
                    on / off);
    }
    std::printf("\nfetch/decode hot path speedup with the cache on: %.2fx (target >= 1.2x: %s)\n",
                iss_ratio, iss_ratio >= 1.2 ? "met" : "NOT MET");
}

/// Block-cache on/off ablation.  Both configurations keep the decode cache
/// on, so the "off" column is the decode-cache baseline and the ISS row
/// isolates the translated-block/threaded-dispatch win.  The timing
/// engines fetch through the OSM pipeline (no block dispatch), so their
/// rows stay ~1.0x — the table makes that explicit rather than implying
/// the speedup transfers.
void block_cache_ablation() {
    std::printf("\n== block-cache ablation (translated basic blocks + threaded dispatch) ==\n\n");
    std::printf("%-26s %12s %12s %9s\n", "engine", "on Minst/s", "off Minst/s",
                "speedup");

    double iss_ratio = 0;
    for (const auto& name : sim::engine_registry::instance().names()) {
        sim::engine_config cfg;
        const unsigned reps = reps_for(name);
        cfg.block_cache = true;
        const double on = measure_minst(name, cfg, reps);
        cfg.block_cache = false;
        const double off = measure_minst(name, cfg, reps);
        if (on < 0 || off < 0) continue;
        if (name == "iss") iss_ratio = on / off;
        std::printf("%-26s %12.2f %12.2f %8.2fx\n", name.c_str(), on, off,
                    on / off);
    }
    std::printf("\nISS speedup over the decode-cache baseline: %.2fx (target >= 5x: %s)\n",
                iss_ratio, iss_ratio >= 5.0 ? "met" : "NOT MET");
}

/// Director-batch on/off ablation for the OSM-director-based engines: the
/// blocked-OSM generation memo skips control-step visits whose token
/// queries cannot have changed, so the win scales with how often OSMs
/// stall (cache misses, structural hazards).
void director_batch_ablation() {
    std::printf("\n== director-batch ablation (blocked-OSM skip via generation memos) ==\n\n");
    std::printf("%-26s %12s %12s %9s\n", "engine", "on Minst/s", "off Minst/s",
                "speedup");

    for (const auto& name : sim::engine_registry::instance().names()) {
        sim::engine_config probe_cfg;
        if (sim::make_engine(name, probe_cfg)->director() == nullptr) continue;
        sim::engine_config cfg;
        const unsigned reps = reps_for(name);
        cfg.director_batch = true;
        const double on = measure_minst(name, cfg, reps);
        cfg.director_batch = false;
        const double off = measure_minst(name, cfg, reps);
        if (on < 0 || off < 0) continue;
        std::printf("%-26s %12.2f %12.2f %8.2fx\n", name.c_str(), on, off,
                    on / off);
    }
}

}  // namespace

int main() {
    std::printf("== §5.1 speed: OSM SARM model vs hand-coded cycle simulator ==\n\n");
    std::printf("%-12s %14s %14s %8s\n", "workload", "OSM kcyc/s", "hand kcyc/s", "ratio");

    const sim::engine_config cfg;
    double osm_cycles = 0;
    double osm_secs = 0;
    double hw_cycles = 0;
    double hw_secs = 0;
    for (auto& w : workloads::mediabench_suite(2)) {
        // Untimed warmup runs: cold-start host effects stay out of the
        // timed region (steady-state kcyc/s reported).
        measure("sarm", cfg, w.image);
        measure("hw", cfg, w.image);
        auto osm_run = measure("sarm", cfg, w.image);
        auto hw_run = measure("hw", cfg, w.image);

        const double k1 =
            static_cast<double>(osm_run.eng->cycles()) / osm_run.secs / 1e3;
        const double k2 =
            static_cast<double>(hw_run.eng->cycles()) / hw_run.secs / 1e3;
        std::printf("%-12s %14.0f %14.0f %7.2fx\n", w.name.c_str(), k1, k2, k1 / k2);
        osm_cycles += static_cast<double>(osm_run.eng->cycles());
        osm_secs += osm_run.secs;
        hw_cycles += static_cast<double>(hw_run.eng->cycles());
        hw_secs += hw_run.secs;
    }
    const double k_osm = osm_cycles / osm_secs / 1e3;
    const double k_hw = hw_cycles / hw_secs / 1e3;
    std::printf("\naverage: OSM %.0f kcyc/s, hand-coded %.0f kcyc/s (OSM/hand = %.2fx)\n",
                k_osm, k_hw, k_osm / k_hw);
    std::printf("paper:   OSM 650 kcyc/s, SimpleScalar 550 kcyc/s (1.18x), P-III 1.1GHz\n");

    decode_cache_ablation();
    block_cache_ablation();
    director_batch_ablation();
    return 0;
}
