// Reproduces the paper §5.1 throughput comparison: "The resulting simulator
// runs at the average speed of 650k cycles/sec ... In comparison, the ARM
// simulator of the SimpleScalar tool-set runs at 550k cycles/sec on the
// same machine."
//
// Substitution (DESIGN.md): the SimpleScalar role is played by the
// hand-sequentialized cycle simulator of the same pipeline.  Note that this
// baseline is leaner than SimpleScalar (no RUU machinery, no per-cycle
// statistics sweep), so the measured ratio overstates the hand-coded side
// relative to the paper's comparison; EXPERIMENTS.md discusses this.
#include <chrono>
#include <cstdio>

#include "baseline/hardwired_sarm.hpp"
#include "isa/iss.hpp"
#include "mem/main_memory.hpp"
#include "sarm/sarm.hpp"
#include "workloads/workloads.hpp"

using namespace osm;

namespace {

template <typename Model>
double measure_kcps(Model& model, const isa::program_image& img) {
    model.load(img);
    const auto t0 = std::chrono::steady_clock::now();
    model.run(2'000'000'000ull);
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    return secs;
}

/// Simulated-instruction throughput (Minst/s) of `model` over the workload
/// suite, repeated `reps` times so short workloads measure above timer
/// noise.  `retired` must return the per-run retirement count.
template <typename Model, typename Retired>
double measure_minst(Model& model, Retired retired, unsigned reps) {
    double insts = 0;
    double secs = 0;
    for (auto& w : workloads::mediabench_suite(2)) {
        for (unsigned r = 0; r < reps; ++r) {
            secs += measure_kcps(model, w.image);
            insts += static_cast<double>(retired(model));
        }
    }
    return insts / secs / 1e6;
}

/// Decode-cache on/off ablation: the cache is architecturally invisible, so
/// the *only* difference between the two configurations is wall-clock time
/// per simulated instruction.  The functional ISS is the pure fetch/decode
/// hot path; the cycle-accurate engines dilute the win with per-cycle
/// scheduling work, which the table makes visible.
void decode_cache_ablation() {
    std::printf("\n== decode-cache ablation (pre-decoded (pc, word)-tagged cache) ==\n\n");
    std::printf("%-26s %12s %12s %9s\n", "engine", "on Minst/s", "off Minst/s",
                "speedup");

    double iss_ratio = 0;
    {
        mem::main_memory m;
        isa::iss sim(m, /*use_decode_cache=*/true);
        const double on = measure_minst(
            sim, [](const isa::iss& s) { return s.instret(); }, 8);
        sim.set_decode_cache(false);
        const double off = measure_minst(
            sim, [](const isa::iss& s) { return s.instret(); }, 8);
        iss_ratio = on / off;
        std::printf("%-26s %12.1f %12.1f %8.2fx\n", "iss (fetch/decode path)", on,
                    off, iss_ratio);
    }
    {
        sarm::sarm_config cfg;
        mem::main_memory m;
        cfg.decode_cache = true;
        baseline::hardwired_sarm on_model(cfg, m);
        const double on = measure_minst(
            on_model, [](const baseline::hardwired_sarm& s) { return s.retired(); }, 2);
        cfg.decode_cache = false;
        baseline::hardwired_sarm off_model(cfg, m);
        const double off = measure_minst(
            off_model, [](const baseline::hardwired_sarm& s) { return s.retired(); }, 2);
        std::printf("%-26s %12.2f %12.2f %8.2fx\n", "hand-coded cycle sim", on, off,
                    on / off);
    }
    {
        sarm::sarm_config cfg;
        mem::main_memory m;
        cfg.decode_cache = true;
        sarm::sarm_model on_model(cfg, m);
        const double on = measure_minst(
            on_model, [](const sarm::sarm_model& s) { return s.stats().retired; }, 1);
        cfg.decode_cache = false;
        sarm::sarm_model off_model(cfg, m);
        const double off = measure_minst(
            off_model, [](const sarm::sarm_model& s) { return s.stats().retired; }, 1);
        std::printf("%-26s %12.2f %12.2f %8.2fx\n", "OSM SARM model", on, off,
                    on / off);
    }
    std::printf("\nfetch/decode hot path speedup with the cache on: %.2fx (target >= 1.2x: %s)\n",
                iss_ratio, iss_ratio >= 1.2 ? "met" : "NOT MET");
}

}  // namespace

int main() {
    std::printf("== §5.1 speed: OSM SARM model vs hand-coded cycle simulator ==\n\n");
    std::printf("%-12s %14s %14s %8s\n", "workload", "OSM kcyc/s", "hand kcyc/s", "ratio");

    double osm_cycles = 0;
    double osm_secs = 0;
    double hw_cycles = 0;
    double hw_secs = 0;
    for (auto& w : workloads::mediabench_suite(2)) {
        sarm::sarm_config cfg;
        mem::main_memory m1, m2;
        sarm::sarm_model osm_model(cfg, m1);
        const double s1 = measure_kcps(osm_model, w.image);
        baseline::hardwired_sarm hw(cfg, m2);
        const double s2 = measure_kcps(hw, w.image);

        const double k1 = static_cast<double>(osm_model.stats().cycles) / s1 / 1e3;
        const double k2 = static_cast<double>(hw.cycles()) / s2 / 1e3;
        std::printf("%-12s %14.0f %14.0f %7.2fx\n", w.name.c_str(), k1, k2, k1 / k2);
        osm_cycles += static_cast<double>(osm_model.stats().cycles);
        osm_secs += s1;
        hw_cycles += static_cast<double>(hw.cycles());
        hw_secs += s2;
    }
    const double k_osm = osm_cycles / osm_secs / 1e3;
    const double k_hw = hw_cycles / hw_secs / 1e3;
    std::printf("\naverage: OSM %.0f kcyc/s, hand-coded %.0f kcyc/s (OSM/hand = %.2fx)\n",
                k_osm, k_hw, k_osm / k_hw);
    std::printf("paper:   OSM 650 kcyc/s, SimpleScalar 550 kcyc/s (1.18x), P-III 1.1GHz\n");

    decode_cache_ablation();
    return 0;
}
