// Reproduces paper §6: extraction of compiler- and verification-facing
// properties from the declarative models — operand latencies, reservation
// tables, ASM-formalism rendering — plus the static consistency checks.
#include <cstdio>

#include "analysis/analysis.hpp"
#include "mem/main_memory.hpp"
#include "ppc750/ppc750.hpp"
#include "sarm/sarm.hpp"

using namespace osm;

namespace {

void report(const char* name, const core::osm_graph& g, const char* wb_mgr) {
    std::printf("-- %s --\n", name);
    const auto t = analysis::extract_reservation_table(g, wb_mgr);
    std::printf("  reservation table (main path):\n");
    for (std::size_t i = 0; i < t.table.size(); ++i) {
        std::printf("    step %zu  %-3s holds:", i + 1, t.table[i].state.c_str());
        for (const auto& tok : t.table[i].held_tokens) std::printf(" %s", tok.c_str());
        std::printf("\n");
    }
    std::printf("  result (writeback) latency: %d cycles\n", t.result_latency);

    const auto rep = analysis::lint(g);
    std::printf("  lint: %zu unreachable, %zu sinks, %zu possible leaks (%s)\n",
                rep.unreachable_states.size(), rep.sink_states.size(),
                rep.token_leaks.size(),
                rep.clean() ? "clean" : "conservative findings, see tests");
    std::printf("  allocation order consistent (deadlock-freedom evidence): %s\n",
                analysis::allocation_order_consistent(g) ? "yes" : "no");
    std::printf("  managers referenced: %zu;  ASM rendering: %zu bytes;  "
                "dot: %zu bytes\n\n",
                analysis::referenced_managers(g).size(),
                analysis::to_asm_rules(g).size(), analysis::to_dot(g).size());
}

}  // namespace

int main() {
    std::printf("== §6: property extraction from declarative OSM models ==\n\n");
    mem::main_memory m1, m2;
    sarm::sarm_model sm(sarm::sarm_config{}, m1);
    ppc750::p750_model pm(ppc750::p750_config{}, m2);
    report("SARM (5-stage in-order)", sm.graph(), "m_w");
    report("P750 (dual-issue out-of-order)", pm.graph(), "m_cq");

    std::printf("-- ASM-formalism excerpt (SARM rule e0) --\n");
    const std::string rules = analysis::to_asm_rules(sm.graph());
    std::printf("%s...\n", rules.substr(0, rules.find("rule e1")).c_str());
    return 0;
}
