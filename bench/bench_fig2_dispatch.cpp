// Reproduces the behaviour of paper Fig. 2: "When an instruction is
// dispatched from the fetch queue, it will check if all source operands and
// the function unit are available.  If this is the case, it will enter
// directly into the unit.  Otherwise, it will enter the reservation station
// of the unit."
//
// This bench measures, per workload, how dispatches split between the
// direct path (Fig. 2 edge e1, F->E) and the reservation-station path
// (edges e2/e3, F->R->E) — the multiple prioritized paths that the paper
// notes L-charts cannot express.
#include <cstdio>

#include "isa/assembler.hpp"
#include "mem/main_memory.hpp"
#include "ppc750/ppc750.hpp"
#include "workloads/workloads.hpp"

using namespace osm;

int main() {
    std::printf("== Fig. 2: direct issue vs reservation-station issue ==\n\n");
    std::printf("%-14s %12s %10s %10s %9s\n", "workload", "dispatched", "direct",
                "via RS", "direct%");

    for (auto& w : workloads::mixed_suite(1)) {
        ppc750::p750_config cfg;
        mem::main_memory m;
        ppc750::p750_model model(cfg, m);
        model.load(w.image);
        model.run(2'000'000'000ull);
        const auto& st = model.stats();
        std::printf("%-14s %12llu %10llu %10llu %8.1f%%\n", w.name.c_str(),
                    static_cast<unsigned long long>(st.dispatched),
                    static_cast<unsigned long long>(st.direct_issues),
                    static_cast<unsigned long long>(st.rs_issues),
                    100.0 * static_cast<double>(st.direct_issues) /
                        static_cast<double>(st.dispatched));
    }

    // A focused probe: back-to-back dependent ops must take the RS path,
    // independent ops the direct path.
    std::printf("\nprobe: dependent chain vs independent stream\n");
    const auto dep = isa::assemble(R"(
        li s0, 500
        li a0, 1
loop:   add a0, a0, a0
        add a0, a0, a0
        add a0, a0, a0
        addi s0, s0, -1
        bne s0, zero, loop
        halt
    )");
    const auto ind = isa::assemble(R"(
        li s0, 500
loop:   addi a0, zero, 1
        addi a1, zero, 2
        addi a2, zero, 3
        addi s0, s0, -1
        bne s0, zero, loop
        halt
    )");
    for (const auto* pair : {&dep, &ind}) {
        ppc750::p750_config cfg;
        mem::main_memory m;
        ppc750::p750_model model(cfg, m);
        model.load(*pair);
        model.run(100'000'000);
        const auto& st = model.stats();
        std::printf("  %-11s direct %5.1f%%  (IPC %.2f)\n",
                    pair == &dep ? "dependent:" : "independent:",
                    100.0 * static_cast<double>(st.direct_issues) /
                        static_cast<double>(st.dispatched),
                    st.ipc());
    }
    return 0;
}
