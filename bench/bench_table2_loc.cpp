// Reproduces paper Table 2: "Source code line numbers" — the modeling
// productivity metric.  The paper counts, for each case-study simulator,
// the lines of (non-comment, non-blank) code in: modules with a TMI,
// modules without a TMI, decoding + OSM initialization, and miscellaneous.
// This bench applies the same accounting to this repository's own sources,
// attributing each file (or, for shared files, a documented share) to the
// same four categories.
#include <cctype>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

namespace {

/// Count non-comment, non-blank lines (the paper's metric).
unsigned count_loc(const std::string& path) {
    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "cannot open %s\n", path.c_str());
        return 0;
    }
    unsigned n = 0;
    std::string line;
    bool in_block = false;
    while (std::getline(in, line)) {
        std::size_t i = 0;
        while (i < line.size() && std::isspace(static_cast<unsigned char>(line[i]))) ++i;
        const std::string_view body = std::string_view(line).substr(i);
        if (in_block) {
            if (body.find("*/") != std::string_view::npos) in_block = false;
            continue;
        }
        if (body.empty()) continue;
        if (body.starts_with("//")) continue;
        if (body.starts_with("/*")) {
            if (body.find("*/") == std::string_view::npos) in_block = true;
            continue;
        }
        ++n;
    }
    return n;
}

struct row {
    const char* category;
    std::vector<std::string> sarm_files;
    std::vector<std::string> p750_files;
};

std::string root(const char* rel) { return std::string(OSM_REPO_ROOT "/") + rel; }

}  // namespace

int main() {
    std::printf("== Table 2: source code line numbers (non-comment, non-blank) ==\n");
    std::printf("(paper: SA-1100 total 3032, PPC-750 total 5004; decode+init ~60%%)\n\n");

    // Category attribution:
    //  * "Modules with TMI"    — the token-manager implementations each
    //    model instantiates (shared uarch library + model-local managers
    //    are in the model files; we charge the shared TMI library to both
    //    targets, as the paper notes "Most hardware modules and their TMIs
    //    were reused across the two targets").
    //  * "Modules without TMI" — caches/TLB/bus/predictors (hardware layer
    //    only).
    //  * "Decoding and OSM init" — the ISA decode tables and the model
    //    files' fetch/decode/identifier-initialization logic; like the
    //    paper, this is the bulk, and is what an ADL would synthesize.
    //  * "Miscellaneous"       — run loop, stats, config plumbing.
    row rows[] = {
        {"Modules with TMI",
         {root("src/uarch/register_file.cpp"), root("src/uarch/reset.cpp")},
         {root("src/uarch/rename.cpp"), root("src/uarch/inorder_queue.cpp"),
          root("src/uarch/reset.cpp")}},
        {"Modules without TMI",
         {root("src/mem/cache.cpp"), root("src/mem/tlb.cpp")},
         {root("src/mem/cache.cpp"), root("src/mem/tlb.cpp"),
          root("src/uarch/predictor.cpp")}},
        {"Decoding and OSM init.",
         {root("src/isa/encoding.cpp"), root("src/sarm/sarm.cpp")},
         {root("src/isa/encoding.cpp"), root("src/ppc750/ppc750.cpp")}},
        {"Miscellaneous",
         {root("src/sarm/sarm.hpp")},
         {root("src/ppc750/ppc750.hpp")}},
    };

    std::printf("%-26s %10s %10s\n", "parts", "SARM", "P750");
    unsigned total_s = 0;
    unsigned total_p = 0;
    for (const row& r : rows) {
        unsigned s = 0;
        unsigned p = 0;
        for (const auto& f : r.sarm_files) s += count_loc(f);
        for (const auto& f : r.p750_files) p += count_loc(f);
        total_s += s;
        total_p += p;
        std::printf("%-26s %10u %10u\n", r.category, s, p);
    }
    std::printf("%-26s %10u %10u\n", "Total", total_s, total_p);

    std::printf("\nshape checks: P750 > SARM: %s;  decode+init is largest: %s\n",
                total_p > total_s ? "yes" : "NO",
                "see rows above");
    std::printf("(the whole OSM core library is shared, as the paper's was)\n");
    return 0;
}
