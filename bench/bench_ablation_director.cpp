// Ablation bench for the director's design choices (DESIGN.md §6):
//   1. Fig. 3 restart-on-transition vs the case studies' no-restart
//      shortcut (paper §5: with age ranking "the director does not need to
//      restart the outer-loop") — must not change model behaviour, only
//      scheduling cost;
//   2. ranking policy: the built-in age fast path vs an equivalent
//      user-supplied rank function (indirect-call cost);
//   3. control-step cost scaling with the number of registered OSMs.
#include <benchmark/benchmark.h>

#include <cassert>
#include <memory>
#include <vector>

#include "core/director.hpp"
#include "core/osm.hpp"
#include "core/osm_graph.hpp"
#include "core/token_manager.hpp"
#include "mem/main_memory.hpp"
#include "sarm/sarm.hpp"
#include "workloads/workloads.hpp"

using namespace osm;

namespace {

/// Self-cycling machine: I -> A -> I with a private unit token each,
/// keeping every OSM permanently active.
struct spinner {
    core::osm_graph g{"spin"};
    std::vector<std::unique_ptr<core::unit_token_manager>> mgrs;
    std::vector<std::unique_ptr<core::osm>> osms;
    core::director dir;

    explicit spinner(int n) {
        const auto I = g.add_state("I");
        const auto A = g.add_state("A");
        // One shared manager: OSMs take turns (forces failed conditions
        // too, like a real stalled pipeline).
        mgrs.push_back(std::make_unique<core::unit_token_manager>("m"));
        auto e = g.add_edge(I, A);
        g.edge_allocate(e, *mgrs[0], core::ident_expr::value(0));
        e = g.add_edge(A, I);
        g.edge_release(e, *mgrs[0], core::ident_expr::value(0));
        g.finalize();
        for (int i = 0; i < n; ++i) {
            osms.push_back(std::make_unique<core::osm>(g, "s" + std::to_string(i)));
            dir.add(*osms.back());
        }
    }
};

void BM_ControlStepScaling(benchmark::State& state) {
    spinner s(static_cast<int>(state.range(0)));
    for (auto _ : state) {
        benchmark::DoNotOptimize(s.dir.control_step());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            state.range(0));
}
BENCHMARK(BM_ControlStepScaling)->Arg(2)->Arg(8)->Arg(16)->Arg(64);

void BM_RestartPolicy(benchmark::State& state) {
    spinner s(8);
    s.dir.cfg().restart_on_transition = state.range(0) != 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(s.dir.control_step());
    }
}
BENCHMARK(BM_RestartPolicy)->Arg(0)->Arg(1);

void BM_RankPolicy(benchmark::State& state) {
    spinner s(8);
    if (state.range(0) != 0) {
        // Same ordering as the default, but through std::function.
        s.dir.set_rank([](const core::osm& m) {
            return static_cast<std::int64_t>(m.age());
        });
    }
    for (auto _ : state) {
        benchmark::DoNotOptimize(s.dir.control_step());
    }
}
BENCHMARK(BM_RankPolicy)->Arg(0)->Arg(1);

void BM_SarmModelRestart(benchmark::State& state) {
    const auto w = workloads::make_gsm_dec(1);
    for (auto _ : state) {
        mem::main_memory m;
        sarm::sarm_config cfg;
        cfg.director_restart = state.range(0) != 0;
        sarm::sarm_model model(cfg, m);
        model.load(w.image);
        model.run(2'000'000'000ull);
        benchmark::DoNotOptimize(model.stats().cycles);
        state.counters["cycles"] =
            static_cast<double>(model.stats().cycles);
        state.counters["restarts"] =
            static_cast<double>(model.dir().stats().outer_restarts);
    }
    state.SetLabel(state.range(0) ? "fig3-restart" : "no-restart");
}
BENCHMARK(BM_SarmModelRestart)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

/// Behaviour check run before the benchmarks: with age ranking, restart
/// on/off must produce identical cycle counts (paper §5).
void verify_restart_equivalence() {
    const auto w = workloads::make_g721_dec(1);
    std::uint64_t cycles[2];
    for (int r = 0; r < 2; ++r) {
        mem::main_memory m;
        sarm::sarm_config cfg;
        cfg.director_restart = r != 0;
        sarm::sarm_model model(cfg, m);
        model.load(w.image);
        model.run(2'000'000'000ull);
        cycles[r] = model.stats().cycles;
    }
    if (cycles[0] != cycles[1]) {
        std::fprintf(stderr, "FAIL: restart changes model timing (%llu vs %llu)\n",
                     static_cast<unsigned long long>(cycles[0]),
                     static_cast<unsigned long long>(cycles[1]));
        std::exit(1);
    }
    std::printf("restart on/off cycle equivalence: holds (%llu cycles), "
                "as paper §5 predicts for age ranking\n\n",
                static_cast<unsigned long long>(cycles[0]));
}

}  // namespace

int main(int argc, char** argv) {
    verify_restart_equivalence();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
