// Micro-architecture ablation sweeps over the P750 model — the design
// choices DESIGN.md §6 calls out, reported as paper-style series:
//   * fetch/completion queue depth vs IPC and measured queue occupancy;
//   * rename buffer count vs IPC;
//   * BHT size vs misprediction rate;
//   * dispatch width vs IPC;
//   * SA-110-style write buffer on the SARM model (write-through caches).
#include <cstdio>

#include "mem/main_memory.hpp"
#include "sarm/sarm.hpp"
#include "ppc750/ppc750.hpp"
#include "workloads/workloads.hpp"

using namespace osm;

namespace {

ppc750::p750_stats run_cfg(const isa::program_image& img,
                           const ppc750::p750_config& cfg,
                           double* cq_mean = nullptr) {
    mem::main_memory m;
    ppc750::p750_model model(cfg, m);
    model.load(img);
    model.run(2'000'000'000ull);
    if (cq_mean != nullptr) *cq_mean = model.cq_occupancy().mean();
    return model.stats();
}

}  // namespace

int main() {
    std::printf("== micro-architecture ablations (P750 model) ==\n");
    const auto w = workloads::make_g721_enc(1);
    const auto wm = workloads::make_mpeg2_dec(1);
    std::printf("workload: %s (branchy) and %s (memory/multiply heavy)\n\n",
                "g721/enc", "mpeg2/dec");

    std::printf("-- queue depth sweep (fetch = completion depth) --\n");
    std::printf("%8s %10s %8s %12s\n", "depth", "cycles", "IPC", "cq mean occ");
    for (const unsigned depth : {2u, 3u, 4u, 6u, 8u, 12u}) {
        ppc750::p750_config cfg;
        cfg.fetch_queue = depth;
        cfg.completion_queue = depth;
        double occ = 0;
        const auto st = run_cfg(w.image, cfg, &occ);
        std::printf("%8u %10llu %8.3f %12.2f\n", depth,
                    static_cast<unsigned long long>(st.cycles), st.ipc(), occ);
    }

    std::printf("\n-- rename buffer sweep --\n");
    std::printf("%8s %10s %8s\n", "buffers", "cycles", "IPC");
    for (const unsigned n : {1u, 2u, 4u, 6u, 12u}) {
        ppc750::p750_config cfg;
        cfg.gpr_renames = n;
        const auto st = run_cfg(wm.image, cfg);
        std::printf("%8u %10llu %8.3f\n", n,
                    static_cast<unsigned long long>(st.cycles), st.ipc());
    }

    std::printf("\n-- BHT size sweep --\n");
    std::printf("%8s %10s %12s\n", "entries", "mispredicts", "mispred rate");
    for (const unsigned n : {8u, 32u, 128u, 512u, 2048u}) {
        ppc750::p750_config cfg;
        cfg.bht_entries = n;
        const auto st = run_cfg(w.image, cfg);
        std::printf("%8u %10llu %11.2f%%\n", n,
                    static_cast<unsigned long long>(st.mispredicts),
                    100.0 * static_cast<double>(st.mispredicts) /
                        static_cast<double>(st.branches));
    }

    std::printf("\n-- SARM write buffer (write-through D-cache, mpeg2/enc) --\n");
    {
        const auto we = workloads::make_mpeg2_enc(1);
        std::printf("%16s %10s %8s\n", "config", "cycles", "IPC");
        for (const int mode : {0, 1}) {
            sarm::sarm_config cfg;
            cfg.dcache.wpolicy = mem::write_policy::write_through;
            cfg.write_buffer = mode != 0;
            mem::main_memory m;
            sarm::sarm_model model(cfg, m);
            model.load(we.image);
            model.run(2'000'000'000ull);
            std::printf("%16s %10llu %8.3f\n",
                        mode ? "4-entry buffer" : "no buffer",
                        static_cast<unsigned long long>(model.stats().cycles),
                        model.stats().ipc());
        }
    }

    std::printf("\n-- dispatch width sweep --\n");
    std::printf("%8s %10s %8s\n", "width", "cycles", "IPC");
    for (const unsigned bw : {1u, 2u, 3u, 4u}) {
        ppc750::p750_config cfg;
        cfg.fetch_bw = bw;
        cfg.dispatch_bw = bw;
        cfg.retire_bw = bw;
        const auto st = run_cfg(wm.image, cfg);
        std::printf("%8u %10llu %8.3f\n", bw,
                    static_cast<unsigned long long>(st.cycles), st.ipc());
    }
    return 0;
}
