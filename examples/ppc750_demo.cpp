// PowerPC-750-like case study demo (paper §5.2): run the mixed
// MediaBench + SPECint-like suite on the OSM P750 model and report the
// out-of-order machine's behaviour: IPC, dispatch paths (paper Fig. 2
// direct-vs-reservation-station issue), prediction and unit utilization.
#include <chrono>
#include <cstdio>

#include "mem/main_memory.hpp"
#include "ppc750/ppc750.hpp"
#include "workloads/workloads.hpp"

using namespace osm;

int main() {
    std::printf("== P750 (PowerPC-750-like, dual-issue out-of-order) on mixed suite ==\n\n");
    std::printf("%-14s %10s %7s %8s %8s %8s %10s\n", "workload", "cycles", "IPC",
                "direct%", "mispred", "squashed", "kcycles/s");

    for (auto& w : workloads::mixed_suite(1)) {
        mem::main_memory memory;
        ppc750::p750_config cfg;
        ppc750::p750_model model(cfg, memory);
        model.load(w.image);
        const auto t0 = std::chrono::steady_clock::now();
        model.run(500'000'000);
        const double secs =
            std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
        const auto& st = model.stats();
        const double direct_pct =
            100.0 * static_cast<double>(st.direct_issues) /
            static_cast<double>(st.direct_issues + st.rs_issues);
        std::printf("%-14s %10llu %7.3f %7.1f%% %8llu %8llu %10.0f\n", w.name.c_str(),
                    static_cast<unsigned long long>(st.cycles), st.ipc(), direct_pct,
                    static_cast<unsigned long long>(st.mispredicts),
                    static_cast<unsigned long long>(st.squashed),
                    static_cast<double>(st.cycles) / secs / 1e3);
    }

    // Unit utilization on one representative workload.
    std::printf("\nunit utilization on mpeg2/dec:\n");
    mem::main_memory memory;
    ppc750::p750_config cfg;
    ppc750::p750_model model(cfg, memory);
    auto w = workloads::make_mpeg2_dec(1);
    model.load(w.image);
    model.run(500'000'000);
    for (unsigned u = 0; u < ppc750::num_units; ++u) {
        const double pct = 100.0 *
                           static_cast<double>(model.stats().unit_busy_cycles[u]) /
                           static_cast<double>(model.stats().cycles);
        std::printf("  %-4s %6.1f%%  [", ppc750::unit_name(static_cast<ppc750::unit>(u)),
                    pct);
        const int bars = static_cast<int>(pct / 2.5);
        for (int i = 0; i < 40; ++i) std::printf(i < bars ? "#" : " ");
        std::printf("]\n");
    }
    std::printf("\n(paper reports 250 kcycles/s on a 1.1 GHz P-III, 4x its SystemC model)\n");
    return 0;
}
