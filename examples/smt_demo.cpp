// Multithreading demo (paper §6) using the framework's SMT model
// (src/smt/): two hardware threads share one pipeline; the thread tag is
// folded into every token identifier, and can also contribute to the
// director's ranking (foreground-thread priority).
#include <cstdio>
#include <string>

#include "isa/assembler.hpp"
#include "mem/main_memory.hpp"
#include "smt/smt.hpp"

using namespace osm;

namespace {

/// Straight-line dependent chain: every op needs the previous result, so a
/// single thread stalls constantly — ideal SMT material.
isa::program_image chain_program(unsigned length, unsigned seed, std::uint32_t base) {
    std::string src = "li a0, " + std::to_string(seed) + "\n";
    for (unsigned i = 0; i < length; ++i) {
        src += "addi a0, a0, 1\n";
        src += "slli a1, a0, 1\n";  // depends on a0 just written
        src += "add a0, a0, a1\n";  // depends on a1
    }
    src += "halt\n";
    return isa::assemble(src, base);
}

}  // namespace

int main() {
    std::printf("== SMT: threads sharing one pipeline (paper section 6) ==\n\n");

    const auto img0 = chain_program(40, 1, 0x1000);
    const auto img1 = chain_program(40, 2, 0x5000);

    // Single-thread reference.
    mem::main_memory mem_a;
    smt::smt_config cfg;
    smt::smt_model solo(cfg, mem_a);
    solo.load(0, img0);
    solo.run(1'000'000);

    // Two threads interleaved.
    mem::main_memory mem_b;
    smt::smt_model both(cfg, mem_b);
    both.load(0, img0);
    both.load(1, img1);
    both.run(1'000'000);

    std::printf("thread 0 final a0 = %u, thread 1 final a0 = %u\n",
                both.gpr(0, 4), both.gpr(1, 4));
    std::printf("single thread: %llu ops in %llu cycles (IPC %.2f)\n",
                static_cast<unsigned long long>(solo.stats().total_retired()),
                static_cast<unsigned long long>(solo.stats().cycles),
                solo.stats().ipc());
    std::printf("two threads:   %llu ops in %llu cycles (IPC %.2f)\n",
                static_cast<unsigned long long>(both.stats().total_retired()),
                static_cast<unsigned long long>(both.stats().cycles),
                both.stats().ipc());
    std::printf("per-thread retirement: t0=%llu t1=%llu (round-robin fetch)\n\n",
                static_cast<unsigned long long>(both.stats().retired[0]),
                static_cast<unsigned long long>(both.stats().retired[1]));

    // Thread tags in the ranking: give thread 0 priority and watch it
    // finish sooner while thread 1 takes the leftovers.
    mem::main_memory mem_c;
    smt::smt_config boosted = cfg;
    boosted.priority_thread = 0;
    smt::smt_model prio(boosted, mem_c);
    prio.load(0, img0);
    prio.load(1, img1);
    std::uint64_t t0_done_cycle = 0;
    while (!prio.thread_done(0) && t0_done_cycle < 100000) {
        prio.run(1);
        ++t0_done_cycle;
    }
    prio.run(1'000'000);
    std::printf("with priority_thread=0: t0 done after %llu cycles "
                "(total run %llu cycles)\n",
                static_cast<unsigned long long>(t0_done_cycle),
                static_cast<unsigned long long>(prio.stats().cycles));
    return 0;
}
