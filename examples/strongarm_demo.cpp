// StrongARM-like case study demo (paper §5.1): run the six MediaBench
// surrogate workloads on the OSM SARM model and report the performance
// metrics a micro-architecture simulator exists to provide.
#include <chrono>
#include <cstdio>

#include "baseline/hardwired_sarm.hpp"
#include "mem/main_memory.hpp"
#include "sarm/sarm.hpp"
#include "workloads/workloads.hpp"

using namespace osm;

int main() {
    std::printf("== SARM (StrongARM-like, 5-stage in-order) on MediaBench surrogates ==\n\n");
    std::printf("%-12s %12s %12s %7s %9s %9s %10s\n", "workload", "instructions",
                "cycles", "IPC", "I$ hit%", "D$ hit%", "kcycles/s");

    double total_cycles = 0;
    double total_seconds = 0;
    for (auto& w : workloads::mediabench_suite(1)) {
        mem::main_memory memory;
        sarm::sarm_config cfg;
        sarm::sarm_model model(cfg, memory);
        model.load(w.image);
        const auto t0 = std::chrono::steady_clock::now();
        model.run(500'000'000);
        const double secs =
            std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
        const auto& st = model.stats();
        std::printf("%-12s %12llu %12llu %7.3f %8.2f%% %8.2f%% %10.0f\n",
                    w.name.c_str(), static_cast<unsigned long long>(st.retired),
                    static_cast<unsigned long long>(st.cycles), st.ipc(),
                    100.0 * model.icache().stats().hit_ratio(),
                    100.0 * model.dcache().stats().hit_ratio(),
                    static_cast<double>(st.cycles) / secs / 1e3);
        total_cycles += static_cast<double>(st.cycles);
        total_seconds += secs;
    }
    std::printf("\naverage simulation speed: %.0f kcycles/s\n",
                total_cycles / total_seconds / 1e3);
    std::printf("(paper reports 650 kcycles/s on a 1.1 GHz P-III)\n");
    return 0;
}
