// VLIW flexibility demo (paper §6: "Since VLIW architectures have simpler
// pipeline control, they can be easily modeled by OSM as well").
//
// The natural OSM encoding of a VLIW is one state machine per *bundle*:
// the bundle claims both execution lanes' resources in a single condition
// (conjunction of primitives = lockstep issue), reads all sources before
// publishing any destination (VLIW read-old-value semantics), and flows
// through a 4-stage pipeline.  ~150 lines turn the framework into a 2-wide
// VLIW simulator.
#include <cstdio>
#include <memory>
#include <vector>

#include "core/director.hpp"
#include "core/osm.hpp"
#include "core/osm_graph.hpp"
#include "core/sim_kernel.hpp"
#include "core/token_manager.hpp"
#include "isa/decoded_inst.hpp"
#include "isa/semantics.hpp"
#include "uarch/register_file.hpp"

using namespace osm;
using isa::decoded_inst;
using isa::op;

namespace {

/// A VLIW bundle: two operation slots (either may be a no-op).
struct bundle {
    decoded_inst slot[2]{};
};

class bundle_osm final : public core::osm {
public:
    using core::osm::osm;
    bundle b{};
    std::uint32_t index = 0;  // bundle index (the VLIW "pc")
    std::uint32_t result[2]{};
};

decoded_inst ri(op c, unsigned rd, unsigned rs1, unsigned rs2) {
    decoded_inst d;
    d.code = c;
    d.rd = static_cast<std::uint8_t>(rd);
    d.rs1 = static_cast<std::uint8_t>(rs1);
    d.rs2 = static_cast<std::uint8_t>(rs2);
    return d;
}

decoded_inst ii(op c, unsigned rd, unsigned rs1, std::int32_t imm) {
    decoded_inst d;
    d.code = c;
    d.rd = static_cast<std::uint8_t>(rd);
    d.rs1 = static_cast<std::uint8_t>(rs1);
    d.imm = imm;
    return d;
}

/// Identifier slots: sources and destinations for both lanes.
enum slot_layout : std::int32_t {
    sl_s1a, sl_s2a, sl_dsta, sl_s1b, sl_s2b, sl_dstb, sl_count
};

class vliw2 {
public:
    explicit vliw2(std::vector<bundle> program)
        : program_(std::move(program)),
          m_f_("m_f"),
          m_x_("m_x"),
          m_w_("m_w"),
          m_r_("m_r", 32, /*reg0_is_zero=*/true, /*forwarding=*/true),
          graph_("vliw2"),
          kern_(dir_) {
        build();
        for (int i = 0; i < 5; ++i) {
            osms_.push_back(std::make_unique<bundle_osm>(graph_, "b" + std::to_string(i)));
            dir_.add(*osms_.back());
        }
    }

    std::uint64_t run() { return kern_.run(100000); }
    std::uint32_t reg(unsigned r) const { return m_r_.arch_read(r); }
    std::uint64_t bundles_retired() const { return retired_; }
    std::uint64_t ops_retired() const { return ops_; }

private:
    void set_lane_idents(bundle_osm& o, unsigned lane, std::int32_t s1,
                         std::int32_t s2, std::int32_t dst) {
        const decoded_inst& d = o.b.slot[lane];
        o.set_ident(s1, isa::uses_rs1(d.code) ? uarch::reg_value_ident(d.rs1)
                                              : core::k_null_ident);
        o.set_ident(s2, isa::uses_rs2(d.code) ? uarch::reg_value_ident(d.rs2)
                                              : core::k_null_ident);
        o.set_ident(dst, isa::writes_rd(d.code) ? uarch::reg_update_ident(d.rd)
                                                : core::k_null_ident);
    }

    void build() {
        using core::ident_expr;
        graph_.set_ident_slots(sl_count);
        const auto I = graph_.add_state("I");
        const auto F = graph_.add_state("F");
        const auto X = graph_.add_state("X");
        const auto W = graph_.add_state("W");

        auto e = graph_.add_edge(I, F);
        graph_.edge_allocate(e, m_f_, ident_expr::value(0));
        graph_.edge_set_action(e, [this](core::osm& m) {
            auto& o = static_cast<bundle_osm&>(m);
            o.index = next_;
            if (next_ < program_.size()) {
                o.b = program_[next_++];
            } else {
                o.b = bundle{};  // past the end: empty bundles flow as nops
            }
            set_lane_idents(o, 0, sl_s1a, sl_s2a, sl_dsta);
            set_lane_idents(o, 1, sl_s1b, sl_s2b, sl_dstb);
        });

        // Lockstep issue: one condition claims the execute stage plus every
        // lane's operands and destinations simultaneously.
        e = graph_.add_edge(F, X);
        graph_.edge_release(e, m_f_, ident_expr::value(0));
        graph_.edge_allocate(e, m_x_, ident_expr::value(0));
        graph_.edge_inquire(e, m_r_, ident_expr::from_slot(sl_s1a));
        graph_.edge_inquire(e, m_r_, ident_expr::from_slot(sl_s2a));
        graph_.edge_inquire(e, m_r_, ident_expr::from_slot(sl_s1b));
        graph_.edge_inquire(e, m_r_, ident_expr::from_slot(sl_s2b));
        graph_.edge_allocate(e, m_r_, ident_expr::from_slot(sl_dsta));
        graph_.edge_allocate(e, m_r_, ident_expr::from_slot(sl_dstb));
        graph_.edge_set_action(e, [this](core::osm& m) {
            auto& o = static_cast<bundle_osm&>(m);
            // VLIW semantics: read every source before any write.
            std::uint32_t a[2], b[2];
            for (unsigned l = 0; l < 2; ++l) {
                a[l] = m_r_.read(o.b.slot[l].rs1);
                b[l] = m_r_.read(o.b.slot[l].rs2);
            }
            for (unsigned l = 0; l < 2; ++l) {
                const decoded_inst& d = o.b.slot[l];
                if (d.code == op::invalid) continue;
                const auto out = isa::compute(d, o.index * 8, a[l], b[l]);
                o.result[l] = out.value;
                if (isa::writes_rd(d.code)) m_r_.publish(d.rd, out.value);
                ++ops_;
            }
        });

        e = graph_.add_edge(X, W);
        graph_.edge_release(e, m_x_, ident_expr::value(0));
        graph_.edge_allocate(e, m_w_, ident_expr::value(0));

        e = graph_.add_edge(W, I);
        graph_.edge_release(e, m_w_, ident_expr::value(0));
        graph_.edge_release(e, m_r_, ident_expr::from_slot(sl_dsta));
        graph_.edge_release(e, m_r_, ident_expr::from_slot(sl_dstb));
        graph_.edge_set_action(e, [this](core::osm& m) {
            auto& o = static_cast<bundle_osm&>(m);
            if (o.index < program_.size() && ++retired_ == program_.size()) {
                kern_.request_stop();  // the whole program has committed
            }
        });

        graph_.finalize();
    }

    std::vector<bundle> program_;
    std::size_t next_ = 0;
    core::unit_token_manager m_f_, m_x_, m_w_;
    uarch::register_file_manager m_r_;
    core::osm_graph graph_;
    core::director dir_;
    core::sim_kernel kern_;
    std::vector<std::unique_ptr<bundle_osm>> osms_;
    std::uint64_t retired_ = 0;
    std::uint64_t ops_ = 0;
};

}  // namespace

int main() {
    std::printf("== 2-wide VLIW built on the OSM core (paper §6) ==\n\n");

    // Straight-line VLIW program: two independent accumulations running in
    // parallel lanes, then a cross-lane combine.
    std::vector<bundle> prog;
    // x4 = 1, x5 = 2
    prog.push_back({{ii(op::addi, 4, 0, 1), ii(op::addi, 5, 0, 2)}});
    for (int i = 0; i < 8; ++i) {
        // Lane A: x6 += x4;   Lane B: x7 += x5 (independent chains).
        prog.push_back({{ri(op::add_r, 6, 6, 4), ri(op::add_r, 7, 7, 5)}});
    }
    // Swap test of VLIW read-before-write semantics: both lanes read the
    // other's old value in one bundle.
    prog.push_back({{ri(op::add_r, 8, 6, 0), ri(op::add_r, 6, 7, 0)}});
    // Combine: x10 = x6 + x7 (second lane idle).
    prog.push_back({{ri(op::add_r, 10, 6, 7), decoded_inst{}}});

    vliw2 cpu(prog);
    const auto cycles = cpu.run();

    std::printf("x6 (was lane-A sum 8)  = %u\n", cpu.reg(6));
    std::printf("x7 (lane-B sum)        = %u (expected 16)\n", cpu.reg(7));
    std::printf("x8 (old x6 via swap)   = %u (expected 8)\n", cpu.reg(8));
    std::printf("x10 (combined)         = %u (expected 32)\n", cpu.reg(10));
    std::printf("\n%llu bundles (%llu operations) in %llu cycles — ops/cycle %.2f\n",
                static_cast<unsigned long long>(cpu.bundles_retired()),
                static_cast<unsigned long long>(cpu.ops_retired()),
                static_cast<unsigned long long>(cycles),
                static_cast<double>(cpu.ops_retired()) / static_cast<double>(cycles));
    return 0;
}
