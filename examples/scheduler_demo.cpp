// Compiler-facing demo (paper §6): "Operation properties such as the
// operand latencies and reservation tables can also be extracted and used
// by a retargetable compiler during operation scheduling."
//
// A small list scheduler reorders a basic block using latencies derived
// from the SARM model (reservation table via analysis::, per-class execute
// latencies via isa::extra_exec_cycles, load-use distance from the B-stage
// forwarding point).  Both instruction orders compute the same result; the
// scheduled one runs measurably faster on the cycle-accurate model.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "analysis/analysis.hpp"
#include "isa/assembler.hpp"
#include "isa/decoded_inst.hpp"
#include "isa/disasm.hpp"
#include "mem/main_memory.hpp"
#include "sarm/sarm.hpp"

using namespace osm;
using isa::decoded_inst;
using isa::op;

namespace {

/// Producer-to-consumer latency on SARM with forwarding: ALU results
/// forward from E (distance 1), loads from B (distance 2), multiplies and
/// divides occupy E for extra cycles first.
unsigned result_latency(const decoded_inst& di) {
    if (isa::is_load(di.code)) return 2;
    return 1 + isa::extra_exec_cycles(di.code);
}

struct block_op {
    decoded_inst di;
    std::vector<std::size_t> deps;  // indices of producers
};

/// Build the dependence graph of a straight-line block (registers only;
/// memory ops are kept in order relative to each other).
std::vector<block_op> analyze(const std::vector<decoded_inst>& block) {
    std::vector<block_op> out;
    std::size_t last_store = SIZE_MAX;
    std::vector<std::size_t> loads_since_store;
    std::vector<std::size_t> last_writer(64, SIZE_MAX);  // 32 GPR + 32 FPR
    const auto reg_ix = [](unsigned r, bool fpr) { return r + (fpr ? 32u : 0u); };
    for (const decoded_inst& di : block) {
        block_op b{di, {}};
        const auto dep_on = [&](std::size_t p) {
            if (p != SIZE_MAX) b.deps.push_back(p);
        };
        if (isa::uses_rs1(di.code)) dep_on(last_writer[reg_ix(di.rs1, isa::rs1_is_fpr(di.code))]);
        if (isa::uses_rs2(di.code)) dep_on(last_writer[reg_ix(di.rs2, isa::rs2_is_fpr(di.code))]);
        // Memory ordering: loads may reorder freely among themselves but
        // not across stores; stores stay ordered after every prior access.
        if (isa::is_load(di.code)) {
            dep_on(last_store);
            loads_since_store.push_back(out.size());
        } else if (isa::is_store(di.code)) {
            dep_on(last_store);
            for (const std::size_t l : loads_since_store) dep_on(l);
            loads_since_store.clear();
            last_store = out.size();
        }
        if (isa::writes_rd(di.code)) {
            // WAW/WAR: order after the previous writer too (scoreboard).
            dep_on(last_writer[reg_ix(di.rd, isa::rd_is_fpr(di.code))]);
            last_writer[reg_ix(di.rd, isa::rd_is_fpr(di.code))] = out.size();
        }
        out.push_back(std::move(b));
    }
    return out;
}

/// Greedy list scheduling: at each step pick the ready op whose producers
/// finished longest ago (critical-path first among ready ops).
std::vector<decoded_inst> list_schedule(const std::vector<decoded_inst>& block) {
    const auto g = analyze(block);
    std::vector<bool> placed(g.size(), false);
    std::vector<unsigned> finish(g.size(), 0);  // producer-ready times
    std::vector<decoded_inst> out;
    unsigned clock = 0;
    while (out.size() < g.size()) {
        std::size_t best = SIZE_MAX;
        unsigned best_ready = ~0u;
        for (std::size_t i = 0; i < g.size(); ++i) {
            if (placed[i]) continue;
            bool deps_placed = true;
            unsigned ready = 0;
            for (const std::size_t d : g[i].deps) {
                if (!placed[d]) {
                    deps_placed = false;
                    break;
                }
                ready = std::max(ready, finish[d]);
            }
            if (!deps_placed) continue;
            // Prefer ops that are already ready; break ties by program order.
            if (ready < best_ready) {
                best_ready = ready;
                best = i;
            }
        }
        placed[best] = true;
        clock = std::max(clock + 1, best_ready + 1);
        finish[best] = clock + result_latency(g[best].di) - 1;
        out.push_back(g[best].di);
    }
    return out;
}

std::uint64_t run_block(const std::vector<decoded_inst>& block, std::uint32_t* checksum) {
    isa::program_builder b;
    b.li(22, 0x9000);  // s0: data base for the block's loads/stores
    // Warm loop around the block so steady-state scheduling dominates.
    b.li(23, 2000);  // s1: trip count
    const auto head = b.here();
    for (const decoded_inst& di : block) b.emit(di);
    b.emit_i(op::addi, 23, 23, -1);
    b.emit_branch(op::bne, 23, 0, head);
    b.mv(4, 10);  // checksum into a0
    b.halt_op();

    mem::main_memory m;
    sarm::sarm_model model(sarm::sarm_config{}, m);
    model.load(b.finish());
    model.run(100'000'000);
    *checksum = model.gpr(4);
    return model.stats().cycles;
}

decoded_inst ri(op c, unsigned rd, unsigned rs1, unsigned rs2) {
    decoded_inst d;
    d.code = c;
    d.rd = static_cast<std::uint8_t>(rd);
    d.rs1 = static_cast<std::uint8_t>(rs1);
    d.rs2 = static_cast<std::uint8_t>(rs2);
    return d;
}

decoded_inst ld(unsigned rd, unsigned base, std::int32_t disp) {
    decoded_inst d;
    d.code = op::lw;
    d.rd = static_cast<std::uint8_t>(rd);
    d.rs1 = static_cast<std::uint8_t>(base);
    d.imm = disp;
    return d;
}

}  // namespace

int main() {
    std::printf("== §6: latency-driven list scheduling from the SARM model ==\n\n");

    // Show where the latencies come from: the extracted reservation table.
    mem::main_memory m;
    sarm::sarm_model probe(sarm::sarm_config{}, m);
    const auto t = analysis::extract_reservation_table(probe.graph(), "m_w");
    std::printf("extracted pipeline: depth %zu, writeback latency %d; "
                "forwarding points: E (ALU, +mul/div occupancy), B (loads)\n\n",
                t.table.size(), t.result_latency);

    // A naive basic block full of back-to-back hazards: each load feeds the
    // next instruction; the multiply chain serializes.
    const std::vector<decoded_inst> naive = {
        ld(12, 22, 0),             // t0 = [s0]      (load)
        ri(op::add_r, 13, 12, 12), // t1 = t0+t0     (load-use!)
        ld(14, 22, 4),             // t2 = [s0+4]
        ri(op::mul, 15, 14, 14),   // t3 = t2*t2     (load-use into mul)
        ld(16, 22, 8),             // t4 = [s0+8]
        ri(op::add_r, 17, 16, 13), // t5 = t4+t1     (load-use)
        ri(op::add_r, 18, 15, 17), // t6 = t3+t5     (mul-use)
        ri(op::xor_r, 10, 18, 13), // a6 = t6^t1
    };
    const auto scheduled = list_schedule(naive);

    std::printf("naive order:                     scheduled order:\n");
    for (std::size_t i = 0; i < naive.size(); ++i) {
        std::printf("  %-28s   %s\n", isa::disassemble(naive[i]).c_str(),
                    isa::disassemble(scheduled[i]).c_str());
    }

    std::uint32_t sum_a = 0;
    std::uint32_t sum_b = 0;
    const auto cyc_naive = run_block(naive, &sum_a);
    const auto cyc_sched = run_block(scheduled, &sum_b);
    std::printf("\nchecksums: naive=%08X scheduled=%08X (%s)\n", sum_a, sum_b,
                sum_a == sum_b ? "equal" : "MISMATCH!");
    std::printf("cycles:    naive=%llu scheduled=%llu  (%.1f%% faster)\n",
                static_cast<unsigned long long>(cyc_naive),
                static_cast<unsigned long long>(cyc_sched),
                100.0 * (static_cast<double>(cyc_naive) - static_cast<double>(cyc_sched)) /
                    static_cast<double>(cyc_naive));
    return sum_a == sum_b ? 0 : 1;
}
