// OSM-DL demo: describe a 4-stage pipelined processor as *text*, elaborate
// it into a runnable model, attach operation semantics through the action
// registry, and run a program — the retargetable-simulator-generation flow
// the paper proposes as future work (§7), in miniature.
#include <cstdio>
#include <memory>
#include <vector>

#include "adl/adl.hpp"
#include "analysis/analysis.hpp"
#include "core/director.hpp"
#include "core/osm.hpp"
#include "core/sim_kernel.hpp"
#include "isa/assembler.hpp"
#include "isa/encoding.hpp"
#include "isa/semantics.hpp"
#include "mem/main_memory.hpp"
#include "uarch/register_file.hpp"
#include "uarch/reset.hpp"

using namespace osm;

namespace {

// The machine description a user would keep in a .osmdl file.
const char* k_machine = R"(
; 4-stage in-order pipeline: fetch, decode, execute, write-back.
machine adl4
slots 3                       ; src1, src2, dst identifiers

manager unit    m_f
manager unit    m_d
manager unit    m_x
manager unit    m_w
manager regfile m_r regs 32 zero forwarding
manager reset   m_reset

state I initial
state F
state D
state X
state W

edge I -> F {
  allocate m_f 0
  action fetch
}
edge F -> I priority 10 {      ; control-hazard reset edge (paper section 4)
  inquire m_reset 0
  discard_all
}
edge D -> I priority 10 {
  inquire m_reset 0
  discard_all
}
edge F -> D {
  release m_f 0
  allocate m_d 0
}
edge D -> X {
  release m_d 0
  allocate m_x 0
  inquire m_r slot 0
  inquire m_r slot 1
  allocate m_r slot 2
  action execute
}
edge X -> W {
  release m_x 0
  allocate m_w 0
}
edge W -> I {
  release m_w 0
  release m_r slot 2
  action retire
}
)";

class adl_op final : public core::osm {
public:
    using core::osm::osm;
    isa::decoded_inst di{};
    std::uint32_t pc = 0;
    std::uint32_t epoch = 0;
};

}  // namespace

int main() {
    std::printf("== OSM-DL: a pipeline described as text (paper §7 future work) ==\n\n");

    // Model context shared by the actions.
    mem::main_memory memory;
    std::uint32_t pc = 0;
    std::uint32_t epoch = 0;
    std::uint64_t retired = 0;
    bool halted = false;
    core::director dir;
    core::sim_kernel kern(dir);

    // Elaborate the description with semantics bound via the registry.
    adl::action_registry reg;
    std::unique_ptr<adl::machine> mc;
    uarch::register_file_manager* rf = nullptr;
    uarch::reset_manager* rs = nullptr;

    reg["fetch"] = [&](core::osm& m) {
        auto& o = static_cast<adl_op&>(m);
        o.pc = pc;
        o.epoch = epoch;
        pc += 4;
        o.di = isa::decode(memory.read32(o.pc));
        o.set_ident(0, isa::uses_rs1(o.di.code) ? uarch::reg_value_ident(o.di.rs1)
                                                : core::k_null_ident);
        o.set_ident(1, isa::uses_rs2(o.di.code) ? uarch::reg_value_ident(o.di.rs2)
                                                : core::k_null_ident);
        o.set_ident(2, isa::writes_rd(o.di.code) ? uarch::reg_update_ident(o.di.rd)
                                                 : core::k_null_ident);
    };
    reg["execute"] = [&](core::osm& m) {
        auto& o = static_cast<adl_op&>(m);
        if (isa::is_system(o.di.code) || o.di.code == isa::op::invalid) return;
        const std::uint32_t a = rf->read(o.di.rs1);
        const std::uint32_t b = rf->read(o.di.rs2);
        const auto out = isa::compute(o.di, o.pc, a, b);
        if (isa::is_load(o.di.code)) {
            const auto v = isa::do_load(o.di.code, memory, out.mem_addr);
            if (isa::writes_rd(o.di.code)) rf->publish(o.di.rd, v);
        } else {
            if (isa::is_store(o.di.code)) {
                isa::do_store(o.di.code, memory, out.mem_addr, out.store_data);
            }
            if (isa::writes_rd(o.di.code)) rf->publish(o.di.rd, out.value);
        }
        if (out.redirect) {
            pc = out.next_pc;
            ++epoch;
        }
    };
    reg["retire"] = [&](core::osm& m) {
        auto& o = static_cast<adl_op&>(m);
        ++retired;
        if (o.di.code == isa::op::halt || o.di.code == isa::op::invalid) {
            halted = true;
            kern.request_stop();
        }
    };

    mc = adl::parse_machine(k_machine, reg);
    rf = static_cast<uarch::register_file_manager*>(mc->find_manager("m_r"));
    rs = static_cast<uarch::reset_manager*>(mc->find_manager("m_reset"));
    rs->arm([&](const core::osm& m) {
        return static_cast<const adl_op&>(m).epoch != epoch;
    });

    // Static analysis straight off the elaborated description.
    std::printf("-- lint --\n  %s\n", analysis::lint(mc->graph).clean()
                                          ? "clean"
                                          : "findings (see analysis::lint)");
    const auto timing = analysis::extract_reservation_table(mc->graph, "m_w");
    std::printf("-- pipeline depth %zu, result latency %d --\n\n",
                timing.table.size(), timing.result_latency);

    // Instantiate operations and run a program.
    std::vector<std::unique_ptr<adl_op>> ops;
    for (int i = 0; i < 6; ++i) {
        ops.push_back(std::make_unique<adl_op>(mc->graph, "op" + std::to_string(i)));
        dir.add(*ops.back());
    }
    const auto img = isa::assemble(R"(
        li a0, 0
        li a1, 1
        li a2, 64
loop:   mul t0, a1, a1
        add a0, a0, t0
        addi a1, a1, 1
        bge a2, a1, loop
        halt
    )");
    img.load_into(memory);
    pc = img.entry;
    const auto cycles = kern.run(1'000'000);

    std::printf("ran %llu instructions in %llu cycles (IPC %.2f); halted=%d\n",
                static_cast<unsigned long long>(retired),
                static_cast<unsigned long long>(cycles),
                static_cast<double>(retired) / static_cast<double>(cycles), halted);
    std::printf("sum of squares 1..64 = %u (expected 89440)\n", rf->arch_read(4));
    return 0;
}
