// Quickstart: build a tiny 3-stage OSM processor from scratch, run a small
// assembled program on it, and extract its properties.
//
// This walks the whole public API surface in one file:
//   1. token managers   — the hardware layer (paper §3.2);
//   2. an osm_graph     — states, prioritized edges, token transactions and
//                         actions (paper §3.1, §3.3);
//   3. a director       — deterministic scheduling (paper §3.4, Fig. 3);
//   4. a sim_kernel     — clocked execution (paper Fig. 4);
//   5. analysis         — reservation table + Graphviz export (paper §6).
#include <cstdio>

#include "analysis/analysis.hpp"
#include "core/director.hpp"
#include "core/osm.hpp"
#include "core/osm_graph.hpp"
#include "core/sim_kernel.hpp"
#include "core/token_manager.hpp"
#include "isa/assembler.hpp"
#include "isa/encoding.hpp"
#include "isa/iss.hpp"
#include "isa/semantics.hpp"
#include "mem/main_memory.hpp"
#include "uarch/register_file.hpp"
#include "uarch/reset.hpp"

using namespace osm;

namespace {

/// An in-flight operation: the OSM plus its instruction context.
class tiny_op final : public core::osm {
public:
    using core::osm::osm;
    isa::decoded_inst di{};
    std::uint32_t pc = 0;
    std::uint32_t epoch = 0;
    isa::exec_out ex{};
};

/// A 3-stage (fetch / execute / write-back) in-order processor.
class tiny_cpu {
public:
    explicit tiny_cpu(mem::main_memory& memory)
        : mem_(memory),
          m_f_("m_f"),
          m_x_("m_x"),
          m_w_("m_w"),
          m_r_("m_r", isa::num_gprs, /*reg0_is_zero=*/true, /*forwarding=*/true),
          m_reset_("m_reset"),
          graph_("tiny3"),
          kern_(dir_) {
        // Control hazards, paper §4: operations fetched in a stale epoch
        // are reset victims.
        m_reset_.arm([this](const core::osm& m) {
            return static_cast<const tiny_op&>(m).epoch != epoch_;
        });
        build();
        for (int i = 0; i < 5; ++i) {
            ops_.push_back(std::make_unique<tiny_op>(graph_, "op" + std::to_string(i)));
            dir_.add(*ops_.back());
        }
    }

    void load(const isa::program_image& img) {
        img.load_into(mem_);
        pc_ = img.entry;
    }

    std::uint64_t run() {
        return kern_.run(100000);
    }

    std::uint32_t reg(unsigned r) const { return m_r_.arch_read(r); }
    std::uint64_t retired() const { return retired_; }
    const core::osm_graph& graph() const { return graph_; }

private:
    void build() {
        using core::ident_expr;
        graph_.set_ident_slots(3);  // src1, src2, dst

        const auto I = graph_.add_state("I");
        const auto F = graph_.add_state("F");
        const auto X = graph_.add_state("X");
        const auto W = graph_.add_state("W");

        // I -> F: claim the fetch stage; fetch + decode + set identifiers.
        auto e = graph_.add_edge(I, F);
        graph_.edge_allocate(e, m_f_, ident_expr::value(0));
        graph_.edge_set_action(e, [this](core::osm& m) {
            auto& o = static_cast<tiny_op&>(m);
            o.pc = pc_;
            o.epoch = epoch_;
            pc_ += 4;
            o.di = isa::decode(mem_.read32(o.pc));
            o.set_ident(0, isa::uses_rs1(o.di.code)
                               ? uarch::reg_value_ident(o.di.rs1)
                               : core::k_null_ident);
            o.set_ident(1, isa::uses_rs2(o.di.code)
                               ? uarch::reg_value_ident(o.di.rs2)
                               : core::k_null_ident);
            o.set_ident(2, isa::writes_rd(o.di.code)
                               ? uarch::reg_update_ident(o.di.rd)
                               : core::k_null_ident);
        });

        // Reset edge (higher priority): squash wrong-path operations.
        e = graph_.add_edge(F, I, /*priority=*/10);
        graph_.edge_inquire(e, m_reset_, ident_expr::value(0));
        graph_.edge_discard_all(e);

        // F -> X: operands available (value tokens), write port claimed.
        e = graph_.add_edge(F, X);
        graph_.edge_release(e, m_f_, ident_expr::value(0));
        graph_.edge_allocate(e, m_x_, ident_expr::value(0));
        graph_.edge_inquire(e, m_r_, ident_expr::from_slot(0));
        graph_.edge_inquire(e, m_r_, ident_expr::from_slot(1));
        graph_.edge_allocate(e, m_r_, ident_expr::from_slot(2));
        graph_.edge_set_action(e, [this](core::osm& m) {
            auto& o = static_cast<tiny_op&>(m);
            if (o.di.code == isa::op::halt) {
                kern_.request_stop();
                return;
            }
            const std::uint32_t a = m_r_.read(o.di.rs1);
            const std::uint32_t b = m_r_.read(o.di.rs2);
            o.ex = isa::compute(o.di, o.pc, a, b);
            if (isa::is_load(o.di.code)) {
                o.ex.value = isa::do_load(o.di.code, mem_, o.ex.mem_addr);
            } else if (isa::is_store(o.di.code)) {
                isa::do_store(o.di.code, mem_, o.ex.mem_addr, o.ex.store_data);
            }
            if (isa::writes_rd(o.di.code)) m_r_.publish(o.di.rd, o.ex.value);
            if (o.ex.redirect) {
                // Taken branch: redirect fetch and start a new epoch; the
                // wrong-path op in F takes its reset edge next step.
                pc_ = o.ex.next_pc;
                ++epoch_;
            }
        });

        // X -> W -> I: drain and commit.
        e = graph_.add_edge(X, W);
        graph_.edge_release(e, m_x_, ident_expr::value(0));
        graph_.edge_allocate(e, m_w_, ident_expr::value(0));

        e = graph_.add_edge(W, I);
        graph_.edge_release(e, m_w_, ident_expr::value(0));
        graph_.edge_release(e, m_r_, ident_expr::from_slot(2));
        graph_.edge_set_action(e, [this](core::osm&) { ++retired_; });

        graph_.finalize();
    }

    mem::main_memory& mem_;
    core::unit_token_manager m_f_, m_x_, m_w_;
    uarch::register_file_manager m_r_;
    uarch::reset_manager m_reset_;
    core::osm_graph graph_;
    core::director dir_;
    core::sim_kernel kern_;
    std::vector<std::unique_ptr<tiny_op>> ops_;
    std::uint32_t pc_ = 0;
    std::uint32_t epoch_ = 0;
    std::uint64_t retired_ = 0;
};

}  // namespace

int main() {
    std::printf("== OSM quickstart: a 3-stage processor in ~100 lines ==\n\n");

    // A tiny program: sum 1..10 with a counted loop (the taken branch
    // exercises the reset-manager control-hazard path each iteration).
    const auto img = isa::assemble(R"(
        li a0, 0      ; sum
        li a1, 1      ; i
        li a2, 10     ; limit
loop:   add a0, a0, a1
        addi a1, a1, 1
        bge a2, a1, loop
        halt
    )");

    mem::main_memory memory;
    tiny_cpu cpu(memory);
    cpu.load(img);
    const std::uint64_t cycles = cpu.run();

    std::printf("program finished: sum(1..10) = %u (expected 55)\n", cpu.reg(4));
    std::printf("retired %llu instructions in %llu cycles (IPC %.2f)\n\n",
                static_cast<unsigned long long>(cpu.retired()),
                static_cast<unsigned long long>(cycles),
                static_cast<double>(cpu.retired()) / static_cast<double>(cycles));

    std::printf("-- extracted reservation table (paper §6) --\n");
    const auto timing = analysis::extract_reservation_table(cpu.graph(), "m_w");
    for (std::size_t i = 0; i < timing.table.size(); ++i) {
        std::printf("  step %zu: state %-2s holds:", i + 1, timing.table[i].state.c_str());
        for (const auto& t : timing.table[i].held_tokens) std::printf(" %s", t.c_str());
        std::printf("\n");
    }
    std::printf("  result latency: %d cycles\n\n", timing.result_latency);

    std::printf("-- machine lint --\n");
    const auto rep = analysis::lint(cpu.graph());
    std::printf("  %s\n\n", rep.clean() ? "clean: no unreachable states, no token leaks"
                                        : "findings present");

    std::printf("-- Graphviz export (render with `dot -Tpng`) --\n%s\n",
                analysis::to_dot(cpu.graph()).c_str());
    return 0;
}
