# Print "HI" and a newline through the PPC32 sc console convention:
# syscall code in r0 (1 = putchar), argument in r3.
#
#   osm-run --engine ppc32 examples/asm/ppc/hello.s
_start:
        li r3, 72                ; 'H'
        li r0, 1
        sc
        li r3, 73                ; 'I'
        li r0, 1
        sc
        li r0, 3                 ; newline
        sc
        li r0, 0                 ; exit
        sc
