# Sum 1..100 and print the result (5050) — the PPC32 twin of
# examples/asm/sum100.s, using a counted CTR loop and the sc console
# convention (code in r0, argument in r3).
#
#   osm-run --engine ppc32 examples/asm/ppc/sum100.s
#   osm-run --engine ppc32-750 --json examples/asm/ppc/sum100.s
_start:
        li r3, 0                 ; accumulator
        li r4, 100
        mtctr r4
loop:   mfctr r5                 ; counts 100 down to 1
        add r3, r3, r5
        bdnz loop
        li r0, 2                 ; print r3 as decimal
        sc
        li r0, 3                 ; newline
        sc
        li r0, 0                 ; exit
        sc
