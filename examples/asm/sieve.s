# Sieve of Eratosthenes over [2, 200): counts primes (46) with byte
# loads/stores to a data region — exercises the memory pipelines and
# D-cache paths of the cycle-accurate engines.
        .data 0x8000
flags:  .space 200
        .text
        li a1, 200              ; limit
        li t0, 2                ; i
mark_outer:
        mul t1, t0, t0          ; i*i
        bge t1, a1, count       ; i*i >= limit -> done marking
        li t2, 0x8000          ; flags base
        add t3, t2, t1          ; &flags[i*i]
mark_inner:
        li t4, 1
        li t2, 0x8000          ; flags base
        add t5, t2, t1
        sb t4, 0(t5)            ; flags[j] = 1
        add t1, t1, t0          ; j += i
        blt t1, a1, mark_inner
        addi t0, t0, 1
        jal zero, mark_outer
count:  li a0, 0                ; prime count
        li t0, 2
count_loop:
        li t2, 0x8000          ; flags base
        add t3, t2, t0
        lbu t4, 0(t3)
        bne t4, zero, not_prime
        addi a0, a0, 1
not_prime:
        addi t0, t0, 1
        blt t0, a1, count_loop
        syscall 2               ; print count
        syscall 3
        syscall 0
