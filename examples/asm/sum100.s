# Sum 1..100 and print the result (5050).  Integer-only: runs on every
# registered engine, including the SMT pipeline.
        li a0, 0                ; accumulator
        li a1, 1                ; counter
        li a2, 100              ; limit
loop:   add a0, a0, a1
        addi a1, a1, 1
        bge a2, a1, loop
        syscall 2               ; print a0 as decimal
        syscall 3               ; newline
        syscall 0               ; exit
