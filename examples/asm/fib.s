# Iterative Fibonacci: print fib(0)..fib(20), one per line.  Exercises
# dependent adds and a counted backward branch on every engine.
        li t0, 0                ; fib(i)
        li t1, 1                ; fib(i+1)
        li t2, 21               ; iterations
loop:   mv a0, t0
        syscall 2               ; print fib(i)
        syscall 3               ; newline
        add t3, t0, t1
        mv t0, t1
        mv t1, t3
        addi t2, t2, -1
        bne t2, zero, loop
        syscall 0               ; exit
