# Floating-point dot product of two 8-element vectors, printed as the
# truncated integer 120 (= 1*8 + 2*7 + ... + 8*1).  Uses the FP register
# file, so integer-only engines (smt) are skipped by `osm-run --diff`.
        .data 0x8000
vec_a:  .word 0x3F800000, 0x40000000, 0x40400000, 0x40800000   ; 1 2 3 4
        .word 0x40A00000, 0x40C00000, 0x40E00000, 0x41000000   ; 5 6 7 8
vec_b:  .word 0x41000000, 0x40E00000, 0x40C00000, 0x40A00000   ; 8 7 6 5
        .word 0x40800000, 0x40400000, 0x40000000, 0x3F800000   ; 4 3 2 1
        .text
        li t0, 0x8000          ; vec_a
        li t1, 0x8020          ; vec_b
        li t2, 8                ; elements
        li t3, 0
        fcvt.s.w f0, t3         ; accumulator = 0.0
loop:   flw f1, 0(t0)
        flw f2, 0(t1)
        fmul f3, f1, f2
        fadd f0, f0, f3
        addi t0, t0, 4
        addi t1, t1, 4
        addi t2, t2, -1
        bne t2, zero, loop
        fcvt.w.s a0, f0         ; truncate to integer
        syscall 2               ; print 120
        syscall 3
        syscall 0
