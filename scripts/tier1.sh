#!/usr/bin/env bash
# Tier-1 gate: the full Release build + test suite (ROADMAP.md), then the
# kernel- and bit-level tests again under ASan+UBSan (OSM_SANITIZE preset).
# The sanitizer pass builds only the two targets it runs, so it stays cheap;
# the binaries are invoked directly rather than through ctest because test
# discovery would otherwise require building every gtest target twice.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -S .
cmake --build build -j
ctest --test-dir build --output-on-failure -j

cmake -B build-asan -S . -DOSM_SANITIZE=ON
cmake --build build-asan -j --target de_test common_test
./build-asan/tests/de_test
./build-asan/tests/common_test

echo "tier1: OK (ctest suite + sanitized de_test/common_test)"
