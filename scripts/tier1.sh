#!/usr/bin/env bash
# Tier-1 gate: the full Release build + test suite (ROADMAP.md), then the
# kernel- and bit-level tests again under ASan+UBSan (OSM_SANITIZE preset),
# plus a registry-driven differential smoke: one random program executed on
# every registered engine under the sanitizers, requiring zero architectural
# divergence.  The sanitizer pass builds only the targets it runs, so it
# stays cheap; the binaries are invoked directly rather than through ctest
# because test discovery would otherwise require building every gtest
# target twice.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -S .
cmake --build build -j
ctest --test-dir build --output-on-failure -j

cmake -B build-asan -S . -DOSM_SANITIZE=ON
cmake --build build-asan -j --target de_test common_test checkpoint_test serve_test litmus_test osm-run osm-fuzz
./build-asan/tests/de_test
./build-asan/tests/common_test

# Checkpoint suite under the sanitizers: round-trip property, golden
# byte-stability, lockstep bisection (ctest -L checkpoint discovers the
# already-built checkpoint_test binary only).
ctest --test-dir build-asan -L checkpoint --output-on-failure -j

# Litmus suite under the sanitizers: the multi-hart ISS against the
# exhaustive SC/TSO outcome enumerator (corpus pins, SB 0/0 reachability,
# determinism) with ASan+UBSan watching the shared-memory subsystem.
ctest --test-dir build-asan -L litmus --output-on-failure -j

# Serve suite under the sanitizers: sharded-merge byte-identity, the
# content-addressed result cache, watchdog preemption with checkpoint
# migration, and the speculative parallel minimizer.
ctest --test-dir build-asan -L serve --output-on-failure -j

# Differential smoke: every engine in the registry must agree on a random
# program while ASan+UBSan watch the models themselves.
./build-asan/tools/osm-run --rand 20260805 --diff all --max-cycles 50000000

# Block-cache differential smoke: the same all-engine agreement with the
# translated-block fast path explicitly on and explicitly off, so the
# sanitizers sweep both the threaded-dispatch loop (including superblock
# side exits and the SMC store screen) and the interpretive path on an
# identical program.
./build-asan/tools/osm-run --rand 20260807 --diff all --block-cache \
    --max-cycles 50000000
./build-asan/tools/osm-run --rand 20260807 --diff all --no-block-cache \
    --max-cycles 50000000

# PPC32 second front-end smoke under the sanitizers: the spec-generated
# decoder and assembler on a committed example, then a random-program
# differential between the functional ISS and the ppc32-750 timing model.
./build-asan/tools/osm-run examples/asm/ppc/sum100.s --engine ppc32
./build-asan/tools/osm-run --rand 20260807 --diff ppc32,ppc32-750 \
    --max-cycles 50000000

# Sanitized fuzz smoke: a bounded quick-matrix campaign over all engines,
# plus a replay of the committed regression corpus (exit 4 = divergence,
# exit 1 = setup error — both fail the gate).
./build-asan/tools/osm-fuzz campaign --seeds 1:16 --matrix quick \
    --max-cycles 20000000 --replay tests/corpus

# Sanitized sharded-campaign smoke: the same campaign on 2 workers through
# the serve pool must produce a byte-identical JSON summary, and a second
# run against the freshly filled on-disk result cache must replay it
# byte-identically again without re-executing the engines.
sv=$(mktemp -d)
./build-asan/tools/osm-fuzz campaign --seeds 1:16 --matrix quick \
    --max-cycles 20000000 --replay tests/corpus --json \
    2>/dev/null >"$sv/serial.json"
./build-asan/tools/osm-fuzz campaign --seeds 1:16 --matrix quick \
    --max-cycles 20000000 --replay tests/corpus --json --jobs 2 \
    2>/dev/null >"$sv/jobs2.json"
./build-asan/tools/osm-fuzz campaign --seeds 1:16 --matrix quick \
    --max-cycles 20000000 --replay tests/corpus --json \
    --cache-dir "$sv/cache" 2>/dev/null >/dev/null
./build-asan/tools/osm-fuzz campaign --seeds 1:16 --matrix quick \
    --max-cycles 20000000 --replay tests/corpus --json \
    --cache-dir "$sv/cache" 2>/dev/null >"$sv/warm.json"
if ! cmp -s "$sv/serial.json" "$sv/jobs2.json"; then
    echo "tier1: FAIL sharded campaign summary differs from serial" >&2
    exit 1
fi
if ! cmp -s "$sv/serial.json" "$sv/warm.json"; then
    echo "tier1: FAIL cache-warm campaign summary differs from serial" >&2
    exit 1
fi
rm -rf "$sv"

# ThreadSanitizer smoke: the worker pool, job queue and result cache are
# the code where data races would live, so build the serve test and a
# bounded 4-worker campaign under TSan (mutually exclusive with ASan, so
# it gets its own build tree; serve_test itself covers the concurrent
# registry and cache traffic).
cmake -B build-tsan -S . -DOSM_TSAN=ON
cmake --build build-tsan -j --target serve_test litmus_test osm-fuzz
ctest --test-dir build-tsan -L serve --output-on-failure
./build-tsan/tools/osm-fuzz campaign --seeds 1:12 --matrix quick \
    --max-cycles 20000000 --jobs 4 --watchdog-ms 2000

# Litmus suite and a bounded multi-hart fuzz smoke under TSan: the
# multi-hart ISS is deterministic single-threaded code, but it runs inside
# the sharded campaign workers, so sweep the mh matrix rows (full matrix,
# seeds chosen to land on them) across 4 workers and the litmus
# differential harness with the race detector on.
ctest --test-dir build-tsan -L litmus --output-on-failure
./build-tsan/tools/osm-fuzz campaign --seeds 1:16 --matrix full \
    --max-cycles 20000000 --jobs 4
./build-tsan/tools/osm-fuzz litmus --seeds 1:4 --schedules 50

# Sanitized checkpoint round-trip smoke on a timing engine: a run that
# saves mid-flight and a run restored from that checkpoint must reach the
# same architectural end state as an uninterrupted run.  pc=/cycles= lines
# are dropped: an architectural-level restore refills the pipeline, so
# those two legitimately differ.
ck=$(mktemp -d)
trap 'rm -rf "$ck"' EXIT
./build-asan/tools/osm-run examples/asm/sum100.s --engine p750 \
    --save-at 150 --save "$ck/mid.ckpt" --dump-arch >"$ck/straight.txt"
./build-asan/tools/osm-run --restore "$ck/mid.ckpt" --engine p750 \
    --dump-arch >"$ck/resumed.txt"
if ! diff <(grep -v -e '^pc=' -e '^cycles=' -e '^\[' "$ck/straight.txt") \
          <(grep -v -e '^pc=' -e '^cycles=' -e '^\[' "$ck/resumed.txt"); then
    echo "tier1: FAIL checkpoint round-trip diverged" >&2
    exit 1
fi

echo "tier1: OK (ctest suite + sanitized de_test/common_test/checkpoint/serve/litmus suites + all-engine diff incl. block-cache on/off + ppc32 smoke + fuzz smoke + sharded/cache-warm byte-identity + TSan serve/litmus/multi-hart smoke + checkpoint round-trip)"
