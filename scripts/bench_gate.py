#!/usr/bin/env python3
"""Throughput regression gate against the committed BENCH_1.json snapshot.

Re-runs osm-bench with the same protocol that produced the snapshot
(scripts/bench.sh) and fails if any per-engine Minst/s — or the ISS
block-cache ablation speedup — dropped by more than the tolerance
(default 20%, override with OSM_BENCH_TOLERANCE or --tolerance).
Single-run engine throughput swings up to ~10-12% on a shared host, so
the floor sits above observed noise while still catching the >1.3x
class of regression the gate exists for.

Registered with ctest as `bench_regression_gate` (RUN_SERIAL: wall-clock
measurements must not share the machine with other tests).  The snapshot
is machine-specific; after a hardware change or an intentional perf
change, regenerate it with scripts/bench.sh and commit the result.
"""

import argparse
import json
import os
import subprocess
import sys


def main() -> int:
    ap = argparse.ArgumentParser()
    ap.add_argument("--snapshot", required=True, help="committed BENCH_1.json")
    ap.add_argument("--bench", required=True, help="path to the osm-bench binary")
    ap.add_argument(
        "--tolerance",
        type=float,
        default=float(os.environ.get("OSM_BENCH_TOLERANCE", "0.20")),
        help="allowed fractional throughput loss (default 0.20)",
    )
    args = ap.parse_args()

    with open(args.snapshot) as f:
        snap = json.load(f)
    if snap.get("schema") != "osm-bench-1":
        print(f"bench_gate: unexpected snapshot schema {snap.get('schema')!r}")
        return 1

    out = subprocess.run(
        [args.bench], stdout=subprocess.PIPE, stderr=subprocess.DEVNULL, check=True
    )
    fresh = json.loads(out.stdout)

    floor = 1.0 - args.tolerance
    failures = []
    print(f"{'metric':<34} {'snapshot':>12} {'fresh':>12} {'ratio':>8}")
    for name, row in sorted(snap["engines"].items()):
        want = row["mips"]
        got = fresh["engines"].get(name, {}).get("mips")
        if got is None:
            failures.append(f"engine {name} missing from fresh run")
            continue
        ratio = got / want if want > 0 else 0.0
        flag = "" if ratio >= floor else "  << REGRESSION"
        print(f"{name + ' Minst/s':<34} {want:>12.2f} {got:>12.2f} {ratio:>7.2f}x{flag}")
        if ratio < floor:
            failures.append(f"{name}: {got:.2f} Minst/s < {floor:.2f} x {want:.2f}")

    want = snap["ablation"]["iss_block_cache_speedup"]
    got = fresh["ablation"]["iss_block_cache_speedup"]
    ratio = got / want if want > 0 else 0.0
    flag = "" if ratio >= floor else "  << REGRESSION"
    print(f"{'iss block-cache speedup':<34} {want:>12.2f} {got:>12.2f} {ratio:>7.2f}x{flag}")
    if ratio < floor:
        failures.append(f"block-cache speedup: {got:.2f}x < {floor:.2f} x {want:.2f}x")

    if failures:
        print("\nbench_gate: FAIL (>{:.0f}% throughput loss vs {})".format(
            args.tolerance * 100, args.snapshot))
        for f in failures:
            print("  " + f)
        print("  (intentional change? regenerate the snapshot: scripts/bench.sh)")
        return 1
    print(f"\nbench_gate: OK (all metrics within {args.tolerance * 100:.0f}% of snapshot)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
