#!/usr/bin/env bash
# Regenerate the committed golden checkpoints under tests/golden/.
#
# Rule (shared with tests/checkpoint_test.cpp): each example is run to
# completion on the ISS to learn its total retirement count T, then a fresh
# ISS run is checkpointed at retirement T/2.  The checkpoint format is
# deterministic, so CheckpointGolden.CommittedCheckpointsAreByteStable can
# regenerate and byte-compare these files on every ctest run; only
# re-commit them after a deliberate format or ISA change.
#
# usage: scripts/regen_golden_checkpoints.sh [BUILD_DIR]
set -euo pipefail

cd "$(dirname "$0")/.."
build="${1:-build}"
run="$build/tools/osm-run"
[ -x "$run" ] || { echo "error: $run not built (cmake --build $build)"; exit 1; }

mkdir -p tests/golden
for name in sum100 fib sieve fp_dot; do
    src="examples/asm/$name.s"
    total=$("$run" "$src" --engine iss 2>/dev/null \
                | sed -n 's/.*retired=\([0-9]*\).*/\1/p' | tail -1)
    [ -n "$total" ] || { echo "error: could not measure $src"; exit 1; }
    "$run" "$src" --engine iss --save-at $((total / 2)) \
           --save "tests/golden/$name.ckpt" >/dev/null
    echo "tests/golden/$name.ckpt (save at $((total / 2))/$total retirements)"
done
