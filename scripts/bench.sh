#!/bin/sh
# Regenerate the committed throughput snapshots BENCH_1.json + BENCH_2.json.
#
#   scripts/bench.sh [builddir]      (default: build)
#
# Runs osm-bench with its default protocol (mixed suite, scale 2, untimed
# warmup per workload, steady-state Minst/s) and writes the stable-schema
# "osm-bench-1" JSON document to BENCH_1.json at the repo root.  The
# snapshot records, per engine, Minst/s and simulated cycles/sec plus the
# decode- and block-cache hit ratios, and the ISS block-/decode-cache
# ablation rows (block-cache target: >= 5x over the decode-cache baseline).
#
# A second pass runs `osm-bench --serve` (sharded fuzz-campaign throughput:
# serial vs. a 4-worker pool vs. cold/warm on-disk result cache) into
# BENCH_2.json ("osm-bench-serve-1" schema).  Note the jobs-N column only
# scales with real cores; on a single-core host the honest speedup story
# is the cache-warm replay.
#
# The snapshot is machine-specific: regenerate it (on an otherwise idle
# host, Release build) whenever benchmarking hardware changes or an
# intentional perf change lands.  scripts/bench_gate.py — registered with
# ctest as bench_regression_gate — re-measures against this file and fails
# on a >10% throughput loss.
set -eu

cd "$(dirname "$0")/.."
BUILD="${1:-build}"
BENCH="$BUILD/tools/osm-bench"

if [ ! -x "$BENCH" ]; then
    echo "bench.sh: $BENCH not found; build first (cmake --build $BUILD --target osm-bench)" >&2
    exit 1
fi

"$BENCH" > BENCH_1.json
echo "bench.sh: wrote BENCH_1.json"

"$BENCH" --serve > BENCH_2.json
echo "bench.sh: wrote BENCH_2.json"
