#!/usr/bin/env bash
# Staleness gate for osm-decgen output: re-generate every committed ISA
# spec into a scratch directory and diff against the checked-in sources
# under src/isa/gen (and the generated markdown sections in docs/).
# Fails when someone edited a generated file by hand or changed a spec
# without regenerating.
#
# Usage: check_generated.sh <osm-decgen-binary> <repo-root>
set -euo pipefail

DECGEN=${1:?usage: check_generated.sh DECGEN REPO_ROOT}
ROOT=${2:?usage: check_generated.sh DECGEN REPO_ROOT}

TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

fail=0
for spec in "$ROOT"/src/isa/specs/*.spec; do
    isa=$(basename "$spec" .spec)
    "$DECGEN" "$spec" --out "$TMP" 2>/dev/null
    for inc in "${isa}_ops.inc" "${isa}_tables.inc"; do
        if ! diff -u "$ROOT/src/isa/gen/$inc" "$TMP/$inc"; then
            echo "check_generated: STALE src/isa/gen/$inc (regenerate:" \
                 "osm-decgen src/isa/specs/$isa.spec --out src/isa/gen)" >&2
            fail=1
        fi
    done
    # Generated markdown sections: re-splice a copy of any doc that
    # carries this ISA's markers and diff it.
    for doc in "$ROOT"/docs/*.md; do
        if grep -q "BEGIN GENERATED (osm-decgen: $isa)" "$doc"; then
            cp "$doc" "$TMP/doc.md"
            "$DECGEN" "$spec" --md-splice "$TMP/doc.md" 2>/dev/null
            if ! diff -u "$doc" "$TMP/doc.md"; then
                echo "check_generated: STALE $(basename "$doc") (regenerate:" \
                     "osm-decgen src/isa/specs/$isa.spec --md-splice $doc)" >&2
                fail=1
            fi
        fi
    done
done

if [ "$fail" -ne 0 ]; then
    exit 1
fi
echo "check_generated: OK (all generated sources match committed specs)"
